package lower

import (
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/stdlib"
)

func lowerSrc(t *testing.T, src string) *ir.Program {
	t.Helper()
	files, err := stdlib.ParseWith(map[string]string{"t.fj": src})
	if err != nil {
		t.Fatal(err)
	}
	h, err := lang.BuildHierarchy(files...)
	if err != nil {
		t.Fatal(err)
	}
	if err := lang.Check(h); err != nil {
		t.Fatal(err)
	}
	p, err := Program(h)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func fn(t *testing.T, p *ir.Program, key string) *ir.Func {
	t.Helper()
	f := p.Funcs[key]
	if f == nil {
		t.Fatalf("no function %s", key)
	}
	return f
}

// count returns how many instructions in f satisfy pred.
func count(f *ir.Func, pred func(*ir.Instr) bool) int {
	n := 0
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if pred(&b.Instrs[i]) {
				n++
			}
		}
	}
	return n
}

func TestStdlibLowersAndVerifies(t *testing.T) {
	p := lowerSrc(t, "class Main { static void main() { } }")
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
	// All stdlib classes have bodies.
	for _, key := range []string{"String.hashCode", "String.equals", "HashMap.put", "HashMap.get", "ArrayList.add"} {
		fn(t, p, key)
	}
}

func TestControlFlowShapes(t *testing.T) {
	p := lowerSrc(t, `
class Main {
    static int m(int n) {
        int s = 0;
        for (int i = 0; i < n; i = i + 1) {
            if (i % 2 == 0) { s = s + i; } else { s = s - 1; }
            while (s > 100) { s = s / 2; }
        }
        return s;
    }
    static void main() { }
}
`)
	f := fn(t, p, "Main.m")
	if err := f.Verify(); err != nil {
		t.Fatal(err)
	}
	branches := count(f, func(in *ir.Instr) bool { return in.Op == ir.OpBranch })
	if branches < 3 { // for-head, if, while-head
		t.Fatalf("branches = %d", branches)
	}
}

func TestShortCircuitLowering(t *testing.T) {
	p := lowerSrc(t, `
class Main {
    static boolean f(int calls) { return calls > 0; }
    static int m(int x) {
        // The right operand must not execute when the left decides.
        if (x > 0 && Main.f(x) || x < 0 - 5) { return 1; }
        return 0;
    }
    static void main() { }
}
`)
	f := fn(t, p, "Main.m")
	// Short-circuit means extra blocks + branch structure.
	if len(f.Blocks) < 5 {
		t.Fatalf("short-circuit lowering produced only %d blocks", len(f.Blocks))
	}
}

func TestSyncLoweringBalancesMonitors(t *testing.T) {
	p := lowerSrc(t, `
class Main {
    int v;
    int m(Object l, int x) {
        synchronized (l) {
            if (x > 0) { return 1; }
            for (int i = 0; i < x; i = i + 1) {
                if (i == 3) { break; }
                if (i == 2) { continue; }
            }
        }
        return 0;
    }
    static void main() { }
}
`)
	f := fn(t, p, "Main.m")
	enters := count(f, func(in *ir.Instr) bool { return in.Op == ir.OpMonEnter })
	exits := count(f, func(in *ir.Instr) bool { return in.Op == ir.OpMonExit })
	if enters != 1 {
		t.Fatalf("enters = %d", enters)
	}
	// One normal exit plus one on the early return path.
	if exits < 2 {
		t.Fatalf("exits = %d; early return must release the monitor", exits)
	}
}

func TestCtorLowering(t *testing.T) {
	p := lowerSrc(t, `
class Pt {
    int x;
    Pt(int x) { this.x = x; }
}
class Main {
    static Pt mk() { return new Pt(4); }
    static void main() { }
}
`)
	f := fn(t, p, "Main.mk")
	news := count(f, func(in *ir.Instr) bool { return in.Op == ir.OpNew })
	calls := count(f, func(in *ir.Instr) bool {
		return in.Op == ir.OpCallStatic && in.M != nil && in.M.IsCtor
	})
	if news != 1 || calls != 1 {
		t.Fatalf("new=%d ctorcalls=%d", news, calls)
	}
	if p.Funcs[ir.CtorKey("Pt")] == nil {
		t.Fatal("ctor not lowered under Pt.<init>")
	}
}

func TestStringLiteralInterning(t *testing.T) {
	p := lowerSrc(t, `
class Main {
    static void main() {
        Sys.println("abc");
        Sys.println("abc");
        Sys.println("def");
    }
}
`)
	if len(p.StringPool) != 3 { // "abc", "def" + any stdlib literal? stdlib has none
		if len(p.StringPool) != 2 {
			t.Fatalf("string pool %v", p.StringPool)
		}
	}
	// Interning: both "abc" literals share one index.
	f := fn(t, p, "Main.main")
	idx := map[int64]int{}
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == ir.OpStrLit {
				idx[b.Instrs[i].Imm]++
			}
		}
	}
	if len(idx) != 2 {
		t.Fatalf("expected 2 distinct pool indices, got %v", idx)
	}
}

func TestCastLowering(t *testing.T) {
	p := lowerSrc(t, `
class A { int x; }
class B extends A { int y; }
class Main {
    static int m(A a, B b) {
        A up = b;          // upcast: move, no check
        B down = (B) a;    // downcast: checked
        double d = 3;      // widening conversion
        return (int) d + down.y + up.x;
    }
    static void main() { }
}
`)
	f := fn(t, p, "Main.m")
	casts := count(f, func(in *ir.Instr) bool { return in.Op == ir.OpCast })
	convs := count(f, func(in *ir.Instr) bool { return in.Op == ir.OpConv })
	if casts != 1 {
		t.Fatalf("checked casts = %d want 1 (upcasts must be moves)", casts)
	}
	if convs < 2 { // int->double widening and double->int narrowing
		t.Fatalf("conversions = %d", convs)
	}
}

func TestDeadCodeAfterReturnStaysVerifiable(t *testing.T) {
	p := lowerSrc(t, `
class Main {
    static int m() {
        return 1;
    }
    static void main() { }
}
`)
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestInstrPrinting(t *testing.T) {
	p := lowerSrc(t, `
class Main {
    static int m(int x) {
        int[] a = new int[x];
        a[0] = x;
        return a[0] + a.length;
    }
    static void main() { }
}
`)
	s := fn(t, p, "Main.m").String()
	for _, frag := range []string{"func Main.m", "newarr", "astore", "aload", "alen", "ret"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("printed IR missing %q:\n%s", frag, s)
		}
	}
}
