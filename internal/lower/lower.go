// Package lower translates checked FJ ASTs (internal/lang) into the
// register IR (internal/ir). The translation is direct: one virtual
// register per local variable plus fresh registers for temporaries, and a
// basic-block CFG with explicit jumps. No optimization is performed; the
// FACADE transform and the VM consume the output as-is.
package lower

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/lang"
)

// Program lowers every method of every class in h into an ir.Program.
func Program(h *lang.Hierarchy) (*ir.Program, error) {
	p := &ir.Program{H: h, Funcs: make(map[string]*ir.Func)}
	for _, c := range h.ClassList {
		if c.Ctor != nil {
			f, err := lowerMethod(p, c, c.Ctor, ir.CtorKey(c.Name))
			if err != nil {
				return nil, err
			}
			p.AddFunc(f)
		}
		for _, name := range sortedMethodNames(c) {
			m := c.Methods[name]
			f, err := lowerMethod(p, c, m, ir.FuncKey(c.Name, name))
			if err != nil {
				return nil, err
			}
			p.AddFunc(f)
		}
	}
	if err := p.Verify(); err != nil {
		return nil, fmt.Errorf("lowering produced invalid IR: %w", err)
	}
	return p, nil
}

func sortedMethodNames(c *lang.Class) []string {
	names := make([]string, 0, len(c.Methods))
	for n := range c.Methods {
		names = append(names, n)
	}
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names
}

type loopCtx struct {
	breakBlk    int
	continueBlk int
	syncDepth   int
}

type builder struct {
	p      *ir.Program
	h      *lang.Hierarchy
	cls    *lang.Class
	m      *lang.Method
	fn     *ir.Func
	cur    *ir.Block
	sealed bool // current block already has a terminator
	vars   []map[string]ir.Reg
	loops  []loopCtx
	syncs  []ir.Reg // active synchronized lock registers
	// pos is the source position of the statement/expression being
	// lowered; emit stamps it onto instructions that carry none.
	pos lang.Pos
}

func lowerMethod(p *ir.Program, c *lang.Class, m *lang.Method, key string) (*ir.Func, error) {
	b := &builder{
		p: p, h: p.H, cls: c, m: m,
		fn: &ir.Func{Name: key, Class: c, Method: m},
	}
	b.pushScope()
	if !m.Static {
		this := b.newReg(lang.ClassType(c.Name))
		b.fn.Params = append(b.fn.Params, this)
		b.scope()["this"] = this
	}
	for i, pn := range m.ParamNames {
		r := b.newReg(m.Params[i])
		b.fn.Params = append(b.fn.Params, r)
		b.scope()[pn] = r
	}
	b.startBlock()
	if err := b.stmt(m.Decl.Body); err != nil {
		return nil, err
	}
	if !b.sealed {
		if m.Ret == lang.VoidType || m.IsCtor {
			b.emit(ir.Instr{Op: ir.OpRet, Dst: ir.NoReg, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg})
		} else {
			// Falling off the end of a value-returning method traps at
			// run time (FJ has no definite-return analysis).
			b.emit(ir.Instr{Op: ir.OpIntr, Sym: "trapNoReturn", Dst: ir.NoReg, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg})
			b.emit(ir.Instr{Op: ir.OpRet, Dst: ir.NoReg, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg})
		}
	}
	return b.fn, nil
}

func (b *builder) pushScope() { b.vars = append(b.vars, make(map[string]ir.Reg)) }
func (b *builder) popScope()  { b.vars = b.vars[:len(b.vars)-1] }
func (b *builder) scope() map[string]ir.Reg {
	return b.vars[len(b.vars)-1]
}

func (b *builder) lookup(name string) (ir.Reg, bool) {
	for i := len(b.vars) - 1; i >= 0; i-- {
		if r, ok := b.vars[i][name]; ok {
			return r, true
		}
	}
	return ir.NoReg, false
}

func (b *builder) newReg(t *lang.Type) ir.Reg {
	r := ir.Reg(b.fn.NumRegs)
	b.fn.NumRegs++
	b.fn.RegTypes = append(b.fn.RegTypes, t)
	return r
}

// newSite numbers an allocation site. Lowering order is deterministic
// (files sorted, classes and methods in declaration order), so the same
// source always produces the same site IDs — the property that lets
// classifications computed on P apply to P' and lets profiles be compared
// across runs.
func (b *builder) newSite() int32 {
	b.p.NumSites++
	return int32(b.p.NumSites)
}

// newBlock appends an empty block and returns its ID.
func (b *builder) newBlock() int {
	blk := &ir.Block{ID: len(b.fn.Blocks)}
	b.fn.Blocks = append(b.fn.Blocks, blk)
	return blk.ID
}

// startBlock creates a new block and makes it current.
func (b *builder) startBlock() int {
	id := b.newBlock()
	b.cur = b.fn.Blocks[id]
	b.sealed = false
	return id
}

// useBlock makes an existing block current.
func (b *builder) useBlock(id int) {
	b.cur = b.fn.Blocks[id]
	b.sealed = false
}

func (b *builder) emit(in ir.Instr) {
	if b.sealed {
		// Dead code after a terminator: collect it in a fresh unreachable
		// block so the CFG stays well formed.
		b.startBlock()
	}
	if in.Pos == (lang.Pos{}) {
		in.Pos = b.pos
	}
	b.cur.Instrs = append(b.cur.Instrs, in)
	switch in.Op {
	case ir.OpJump, ir.OpBranch, ir.OpRet:
		b.sealed = true
	}
}

// instr builds an Instr with all register fields defaulted to NoReg.
func instr(op ir.Op) ir.Instr {
	return ir.Instr{Op: op, Dst: ir.NoReg, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg}
}

func (b *builder) jump(target int) {
	in := instr(ir.OpJump)
	in.Blk = target
	b.emit(in)
}

func (b *builder) branch(cond ir.Reg, t, f int) {
	in := instr(ir.OpBranch)
	in.A = cond
	in.Blk = t
	in.Blk2 = f
	b.emit(in)
}

// ---------------------------------------------------------------------------
// Statements

func (b *builder) stmt(s lang.Stmt) error {
	if pos := stmtPos(s); pos.Line > 0 {
		b.pos = pos
	}
	switch st := s.(type) {
	case *lang.BlockStmt:
		b.pushScope()
		for _, x := range st.Stmts {
			if err := b.stmt(x); err != nil {
				return err
			}
		}
		b.popScope()
		return nil
	case *lang.VarDeclStmt:
		r := b.newReg(st.T)
		if st.Init != nil {
			v, err := b.expr(st.Init)
			if err != nil {
				return err
			}
			in := instr(ir.OpMove)
			in.Dst = r
			in.A = v
			b.emit(in)
		} else {
			b.emitZero(r, st.T)
		}
		b.scope()[st.Name] = r
		return nil
	case *lang.AssignStmt:
		return b.assign(st)
	case *lang.IfStmt:
		return b.ifStmt(st)
	case *lang.WhileStmt:
		return b.whileStmt(st)
	case *lang.ForStmt:
		return b.forStmt(st)
	case *lang.ReturnStmt:
		// Release any monitors held by enclosing synchronized blocks.
		for i := len(b.syncs) - 1; i >= 0; i-- {
			in := instr(ir.OpMonEnter)
			in.Op = ir.OpMonExit
			in.A = b.syncs[i]
			b.emit(in)
		}
		in := instr(ir.OpRet)
		if st.Value != nil {
			v, err := b.expr(st.Value)
			if err != nil {
				return err
			}
			in.A = v
		}
		b.emit(in)
		return nil
	case *lang.BreakStmt:
		lc := b.loops[len(b.loops)-1]
		b.exitSyncsTo(lc.syncDepth)
		b.jump(lc.breakBlk)
		return nil
	case *lang.ContinueStmt:
		lc := b.loops[len(b.loops)-1]
		b.exitSyncsTo(lc.syncDepth)
		b.jump(lc.continueBlk)
		return nil
	case *lang.ExprStmt:
		_, err := b.expr(st.X)
		return err
	case *lang.SyncStmt:
		lock, err := b.expr(st.Lock)
		if err != nil {
			return err
		}
		in := instr(ir.OpMonEnter)
		in.A = lock
		b.emit(in)
		b.syncs = append(b.syncs, lock)
		if err := b.stmt(st.Body); err != nil {
			return err
		}
		b.syncs = b.syncs[:len(b.syncs)-1]
		out := instr(ir.OpMonExit)
		out.A = lock
		b.emit(out)
		return nil
	}
	return fmt.Errorf("unhandled statement %T", s)
}

// exitSyncsTo emits MonExit for monitors entered above depth (used by
// break/continue that jump out of synchronized blocks).
func (b *builder) exitSyncsTo(depth int) {
	for i := len(b.syncs) - 1; i >= depth; i-- {
		in := instr(ir.OpMonExit)
		in.A = b.syncs[i]
		b.emit(in)
	}
}

func (b *builder) emitZero(r ir.Reg, t *lang.Type) {
	in := instr(ir.OpConst)
	in.Dst = r
	in.Type = t
	in.NumKind = ir.KindOf(t)
	b.emit(in)
}

func (b *builder) assign(st *lang.AssignStmt) error {
	switch tgt := st.Target.(type) {
	case *lang.IdentExpr:
		r, ok := b.lookup(tgt.Name)
		if !ok {
			return fmt.Errorf("%s: unknown variable %s", tgt.Pos, tgt.Name)
		}
		v, err := b.expr(st.Value)
		if err != nil {
			return err
		}
		in := instr(ir.OpMove)
		in.Dst = r
		in.A = v
		b.emit(in)
		return nil
	case *lang.FieldExpr:
		if tgt.ClassName != "" {
			v, err := b.expr(st.Value)
			if err != nil {
				return err
			}
			in := instr(ir.OpStoreStatic)
			in.A = v
			in.Field = tgt.Resolved
			b.emit(in)
			return nil
		}
		obj, err := b.expr(tgt.X)
		if err != nil {
			return err
		}
		v, err := b.expr(st.Value)
		if err != nil {
			return err
		}
		in := instr(ir.OpStore)
		in.A = obj
		in.B = v
		in.Field = tgt.Resolved
		b.emit(in)
		return nil
	case *lang.IndexExpr:
		arr, err := b.expr(tgt.X)
		if err != nil {
			return err
		}
		idx, err := b.expr(tgt.Index)
		if err != nil {
			return err
		}
		v, err := b.expr(st.Value)
		if err != nil {
			return err
		}
		in := instr(ir.OpAStore)
		in.A = arr
		in.B = idx
		in.C = v
		in.Type = tgt.X.Type().Elem
		b.emit(in)
		return nil
	}
	return fmt.Errorf("bad assignment target %T", st.Target)
}

func (b *builder) ifStmt(st *lang.IfStmt) error {
	cond, err := b.expr(st.Cond)
	if err != nil {
		return err
	}
	thenBlk := b.newBlock()
	elseBlk := -1
	joinBlk := b.newBlock()
	if st.Else != nil {
		elseBlk = b.newBlock()
		b.branch(cond, thenBlk, elseBlk)
	} else {
		b.branch(cond, thenBlk, joinBlk)
	}
	b.useBlock(thenBlk)
	if err := b.stmt(st.Then); err != nil {
		return err
	}
	if !b.sealed {
		b.jump(joinBlk)
	}
	if st.Else != nil {
		b.useBlock(elseBlk)
		if err := b.stmt(st.Else); err != nil {
			return err
		}
		if !b.sealed {
			b.jump(joinBlk)
		}
	}
	b.useBlock(joinBlk)
	// If nothing can reach the join block it still needs a terminator; a
	// subsequent statement will extend it, and lowerMethod adds the final
	// return. Nothing to do here.
	return nil
}

func (b *builder) whileStmt(st *lang.WhileStmt) error {
	headBlk := b.newBlock()
	bodyBlk := b.newBlock()
	exitBlk := b.newBlock()
	b.jump(headBlk)
	b.useBlock(headBlk)
	cond, err := b.expr(st.Cond)
	if err != nil {
		return err
	}
	b.branch(cond, bodyBlk, exitBlk)
	b.loops = append(b.loops, loopCtx{breakBlk: exitBlk, continueBlk: headBlk, syncDepth: len(b.syncs)})
	b.useBlock(bodyBlk)
	if err := b.stmt(st.Body); err != nil {
		return err
	}
	if !b.sealed {
		b.jump(headBlk)
	}
	b.loops = b.loops[:len(b.loops)-1]
	b.useBlock(exitBlk)
	return nil
}

func (b *builder) forStmt(st *lang.ForStmt) error {
	b.pushScope()
	if st.Init != nil {
		if err := b.stmt(st.Init); err != nil {
			return err
		}
	}
	headBlk := b.newBlock()
	bodyBlk := b.newBlock()
	postBlk := b.newBlock()
	exitBlk := b.newBlock()
	b.jump(headBlk)
	b.useBlock(headBlk)
	if st.Cond != nil {
		cond, err := b.expr(st.Cond)
		if err != nil {
			return err
		}
		b.branch(cond, bodyBlk, exitBlk)
	} else {
		b.jump(bodyBlk)
	}
	b.loops = append(b.loops, loopCtx{breakBlk: exitBlk, continueBlk: postBlk, syncDepth: len(b.syncs)})
	b.useBlock(bodyBlk)
	if err := b.stmt(st.Body); err != nil {
		return err
	}
	if !b.sealed {
		b.jump(postBlk)
	}
	b.loops = b.loops[:len(b.loops)-1]
	b.useBlock(postBlk)
	if st.Post != nil {
		if err := b.stmt(st.Post); err != nil {
			return err
		}
	}
	if !b.sealed {
		b.jump(headBlk)
	}
	b.useBlock(exitBlk)
	b.popScope()
	return nil
}

// ---------------------------------------------------------------------------
// Expressions

func (b *builder) expr(e lang.Expr) (ir.Reg, error) {
	if pos := exprPos(e); pos.Line > 0 {
		b.pos = pos
	}
	switch x := e.(type) {
	case *lang.IntLit:
		r := b.newReg(lang.IntType)
		in := instr(ir.OpConst)
		in.Dst = r
		in.Imm = int64(x.Val)
		in.NumKind = ir.KInt
		in.Type = lang.IntType
		b.emit(in)
		return r, nil
	case *lang.LongLit:
		r := b.newReg(lang.LongType)
		in := instr(ir.OpConst)
		in.Dst = r
		in.Imm = x.Val
		in.NumKind = ir.KLong
		in.Type = lang.LongType
		b.emit(in)
		return r, nil
	case *lang.DoubleLit:
		r := b.newReg(lang.DoubleType)
		in := instr(ir.OpConst)
		in.Dst = r
		in.F = x.Val
		in.NumKind = ir.KDouble
		in.Type = lang.DoubleType
		b.emit(in)
		return r, nil
	case *lang.BoolLit:
		r := b.newReg(lang.BoolType)
		in := instr(ir.OpConst)
		in.Dst = r
		if x.Val {
			in.Imm = 1
		}
		in.NumKind = ir.KBool
		in.Type = lang.BoolType
		b.emit(in)
		return r, nil
	case *lang.NullLit:
		r := b.newReg(lang.NullType)
		in := instr(ir.OpConst)
		in.Dst = r
		in.NumKind = ir.KRef
		in.Type = lang.NullType
		b.emit(in)
		return r, nil
	case *lang.StringLit:
		r := b.newReg(lang.ClassType("String"))
		in := instr(ir.OpStrLit)
		in.Dst = r
		in.Imm = int64(b.p.Intern(x.Val))
		in.Type = lang.ClassType("String")
		b.emit(in)
		return r, nil
	case *lang.ThisExpr:
		r, _ := b.lookup("this")
		return r, nil
	case *lang.IdentExpr:
		r, ok := b.lookup(x.Name)
		if !ok {
			return ir.NoReg, fmt.Errorf("%s: unknown variable %s", x.Pos, x.Name)
		}
		return r, nil
	case *lang.FieldExpr:
		return b.fieldExpr(x)
	case *lang.IndexExpr:
		arr, err := b.expr(x.X)
		if err != nil {
			return ir.NoReg, err
		}
		idx, err := b.expr(x.Index)
		if err != nil {
			return ir.NoReg, err
		}
		r := b.newReg(x.Type())
		in := instr(ir.OpALoad)
		in.Dst = r
		in.A = arr
		in.B = idx
		in.Type = x.X.Type().Elem
		b.emit(in)
		return r, nil
	case *lang.CallExpr:
		return b.callExpr(x)
	case *lang.NewExpr:
		return b.newExpr(x)
	case *lang.NewArrayExpr:
		n, err := b.expr(x.Len)
		if err != nil {
			return ir.NoReg, err
		}
		r := b.newReg(lang.ArrayOf(x.ElemT))
		in := instr(ir.OpNewArr)
		in.Dst = r
		in.A = n
		in.Type = x.ElemT
		in.Site = b.newSite()
		b.emit(in)
		return r, nil
	case *lang.UnaryExpr:
		v, err := b.expr(x.X)
		if err != nil {
			return ir.NoReg, err
		}
		r := b.newReg(x.Type())
		in := instr(ir.OpUn)
		in.Dst = r
		in.A = v
		in.NumKind = ir.KindOf(x.Type())
		if x.Op == lang.TokMinus {
			in.Sub = ir.UnNeg
			// byte negation was promoted to int by the checker's typing.
			in.NumKind = ir.KindOf(x.Type())
		} else {
			in.Sub = ir.UnNot
		}
		b.emit(in)
		return r, nil
	case *lang.BinaryExpr:
		return b.binaryExpr(x)
	case *lang.InstanceOfExpr:
		v, err := b.expr(x.X)
		if err != nil {
			return ir.NoReg, err
		}
		r := b.newReg(lang.BoolType)
		in := instr(ir.OpInstOf)
		in.Dst = r
		in.A = v
		in.Type = x.TargetT
		b.emit(in)
		return r, nil
	case *lang.CastExpr:
		return b.castExpr(x)
	}
	return ir.NoReg, fmt.Errorf("unhandled expression %T", e)
}

func (b *builder) fieldExpr(x *lang.FieldExpr) (ir.Reg, error) {
	if x.ClassName != "" {
		r := b.newReg(x.Type())
		in := instr(ir.OpLoadStatic)
		in.Dst = r
		in.Field = x.Resolved
		b.emit(in)
		return r, nil
	}
	obj, err := b.expr(x.X)
	if err != nil {
		return ir.NoReg, err
	}
	if x.IsLen {
		r := b.newReg(lang.IntType)
		in := instr(ir.OpALen)
		in.Dst = r
		in.A = obj
		in.Type = x.X.Type().Elem
		b.emit(in)
		return r, nil
	}
	r := b.newReg(x.Type())
	in := instr(ir.OpLoad)
	in.Dst = r
	in.A = obj
	in.Field = x.Resolved
	b.emit(in)
	return r, nil
}

func (b *builder) callExpr(x *lang.CallExpr) (ir.Reg, error) {
	if x.Intrinsic != "" {
		args := make([]ir.Reg, len(x.Args))
		for i, a := range x.Args {
			r, err := b.expr(a)
			if err != nil {
				return ir.NoReg, err
			}
			args[i] = r
		}
		in := instr(ir.OpIntr)
		in.Sym = x.Intrinsic
		in.Args = args
		if x.Type() != lang.VoidType {
			in.Dst = b.newReg(x.Type())
			// Record argument type for polymorphic intrinsics (print).
			if len(x.Args) > 0 {
				in.Type = x.Args[0].Type()
			}
		} else if len(x.Args) > 0 {
			in.Type = x.Args[0].Type()
		}
		b.emit(in)
		return in.Dst, nil
	}
	var recv ir.Reg = ir.NoReg
	if x.Recv != nil {
		r, err := b.expr(x.Recv)
		if err != nil {
			return ir.NoReg, err
		}
		recv = r
	}
	args := make([]ir.Reg, len(x.Args))
	for i, a := range x.Args {
		r, err := b.expr(a)
		if err != nil {
			return ir.NoReg, err
		}
		args[i] = r
	}
	in := instr(ir.OpCall)
	if x.Resolved.Static {
		in.Op = ir.OpCallStatic
	}
	in.A = recv
	in.Args = args
	in.M = x.Resolved
	if x.Resolved.Ret != lang.VoidType {
		in.Dst = b.newReg(x.Resolved.Ret)
	}
	b.emit(in)
	return in.Dst, nil
}

func (b *builder) newExpr(x *lang.NewExpr) (ir.Reg, error) {
	r := b.newReg(lang.ClassType(x.Class))
	in := instr(ir.OpNew)
	in.Dst = r
	in.Cls = x.Cls
	in.Site = b.newSite()
	b.emit(in)
	if x.Ctor != nil {
		args := make([]ir.Reg, len(x.Args))
		for i, a := range x.Args {
			ar, err := b.expr(a)
			if err != nil {
				return ir.NoReg, err
			}
			args[i] = ar
		}
		call := instr(ir.OpCallStatic)
		call.A = r
		call.Args = args
		call.M = x.Ctor
		b.emit(call)
	}
	return r, nil
}

func (b *builder) castExpr(x *lang.CastExpr) (ir.Reg, error) {
	v, err := b.expr(x.X)
	if err != nil {
		return ir.NoReg, err
	}
	src := x.X.Type()
	dst := x.TargetT
	if src.IsNumeric() && dst.IsNumeric() {
		sk, dk := ir.KindOf(src), ir.KindOf(dst)
		if sk == dk {
			return v, nil
		}
		r := b.newReg(dst)
		in := instr(ir.OpConv)
		in.Dst = r
		in.A = v
		in.NumKind = sk
		in.NumKind2 = dk
		b.emit(in)
		return r, nil
	}
	// Reference casts: upcasts need no check; downcasts are checked.
	if b.h.IsAssignable(dst, src) || src.Kind == lang.TNull ||
		(dst.Kind == lang.TClass && dst.Name == "Object") {
		r := b.newReg(dst)
		in := instr(ir.OpMove)
		in.Dst = r
		in.A = v
		b.emit(in)
		return r, nil
	}
	r := b.newReg(dst)
	in := instr(ir.OpCast)
	in.Dst = r
	in.A = v
	in.Type = dst
	b.emit(in)
	return r, nil
}

func (b *builder) binaryExpr(x *lang.BinaryExpr) (ir.Reg, error) {
	// Short-circuit && and ||.
	if x.Op == lang.TokAndAnd || x.Op == lang.TokOrOr {
		r := b.newReg(lang.BoolType)
		lhs, err := b.expr(x.X)
		if err != nil {
			return ir.NoReg, err
		}
		mv := instr(ir.OpMove)
		mv.Dst = r
		mv.A = lhs
		b.emit(mv)
		rhsBlk := b.newBlock()
		joinBlk := b.newBlock()
		if x.Op == lang.TokAndAnd {
			b.branch(lhs, rhsBlk, joinBlk)
		} else {
			b.branch(lhs, joinBlk, rhsBlk)
		}
		b.useBlock(rhsBlk)
		rhs, err := b.expr(x.Y)
		if err != nil {
			return ir.NoReg, err
		}
		mv2 := instr(ir.OpMove)
		mv2.Dst = r
		mv2.A = rhs
		b.emit(mv2)
		b.jump(joinBlk)
		b.useBlock(joinBlk)
		return r, nil
	}
	lhs, err := b.expr(x.X)
	if err != nil {
		return ir.NoReg, err
	}
	rhs, err := b.expr(x.Y)
	if err != nil {
		return ir.NoReg, err
	}
	r := b.newReg(x.Type())
	in := instr(ir.OpBin)
	in.Dst = r
	in.A = lhs
	in.B = rhs
	in.NumKind = ir.KindOf(x.X.Type())
	switch x.Op {
	case lang.TokPlus:
		in.Sub = ir.BinAdd
	case lang.TokMinus:
		in.Sub = ir.BinSub
	case lang.TokStar:
		in.Sub = ir.BinMul
	case lang.TokSlash:
		in.Sub = ir.BinDiv
	case lang.TokPercent:
		in.Sub = ir.BinRem
	case lang.TokAnd:
		in.Sub = ir.BinAnd
	case lang.TokOr:
		in.Sub = ir.BinOr
	case lang.TokCaret:
		in.Sub = ir.BinXor
	case lang.TokShl:
		in.Sub = ir.BinShl
	case lang.TokShr:
		in.Sub = ir.BinShr
	case lang.TokLt:
		in.Sub = ir.BinLt
	case lang.TokLe:
		in.Sub = ir.BinLe
	case lang.TokGt:
		in.Sub = ir.BinGt
	case lang.TokGe:
		in.Sub = ir.BinGe
	case lang.TokEq:
		in.Sub = ir.BinEq
	case lang.TokNe:
		in.Sub = ir.BinNe
	default:
		return ir.NoReg, fmt.Errorf("bad binary op %s", x.Op)
	}
	b.emit(in)
	return r, nil
}

// ---------------------------------------------------------------------------
// Source positions

// stmtPos returns the source position of a statement node.
func stmtPos(s lang.Stmt) lang.Pos {
	switch st := s.(type) {
	case *lang.BlockStmt:
		return st.Pos
	case *lang.VarDeclStmt:
		return st.Pos
	case *lang.AssignStmt:
		return st.Pos
	case *lang.IfStmt:
		return st.Pos
	case *lang.WhileStmt:
		return st.Pos
	case *lang.ForStmt:
		return st.Pos
	case *lang.ReturnStmt:
		return st.Pos
	case *lang.BreakStmt:
		return st.Pos
	case *lang.ContinueStmt:
		return st.Pos
	case *lang.ExprStmt:
		return st.Pos
	case *lang.SyncStmt:
		return st.Pos
	}
	return lang.Pos{}
}

// exprPos returns the source position of an expression node.
func exprPos(e lang.Expr) lang.Pos {
	switch x := e.(type) {
	case *lang.IntLit:
		return x.Pos
	case *lang.LongLit:
		return x.Pos
	case *lang.DoubleLit:
		return x.Pos
	case *lang.BoolLit:
		return x.Pos
	case *lang.NullLit:
		return x.Pos
	case *lang.StringLit:
		return x.Pos
	case *lang.IdentExpr:
		return x.Pos
	case *lang.ThisExpr:
		return x.Pos
	case *lang.FieldExpr:
		return x.Pos
	case *lang.IndexExpr:
		return x.Pos
	case *lang.CallExpr:
		return x.Pos
	case *lang.NewExpr:
		return x.Pos
	case *lang.NewArrayExpr:
		return x.Pos
	case *lang.UnaryExpr:
		return x.Pos
	case *lang.BinaryExpr:
		return x.Pos
	case *lang.InstanceOfExpr:
		return x.Pos
	case *lang.CastExpr:
		return x.Pos
	}
	return lang.Pos{}
}
