// Package ir defines the typed register-based intermediate representation
// that FJ programs are lowered to, the FACADE transform rewrites, and the VM
// interprets. It plays the role Jimple plays for the paper's Soot-based
// compiler: a three-address IR over a control-flow graph, with explicit
// field offsets and static types on every virtual register.
//
// The instruction set has two halves:
//
//   - the "object" half (OpNew, OpLoad, OpStore, ...) operates on managed
//     heap objects and is what lowering emits for program P;
//   - the "page" half (OpPNew, OpPLoad, OpResolve, OpPoolGet, ...) operates
//     on off-heap page records through 64-bit page references and is what
//     the FACADE transform emits for program P'.
//
// Facade objects themselves are ordinary heap objects, so binding a page
// reference to a facade is a plain OpStore of the Facade.pageRef field.
package ir

import (
	"fmt"
	"sync"

	"repro/internal/lang"
)

// Reg identifies a virtual register within a function. NoReg means absent.
type Reg int32

// NoReg marks an absent register operand.
const NoReg Reg = -1

// Op is an instruction opcode.
type Op uint8

// Opcodes.
const (
	OpNop Op = iota

	// Values and arithmetic.
	OpConst  // Dst = Imm / F (interpreted per Type)
	OpStrLit // Dst = interned String for StringPool[Imm]
	OpMove   // Dst = A
	OpBin    // Dst = A <Sub> B, numeric kind in NumKind
	OpUn     // Dst = <Sub> A
	OpConv   // Dst = numeric conversion of A (NumKind=src kind, NumKind2=dst kind)

	// Managed-heap data access (program P).
	OpNew    // Dst = allocate instance of Cls (fields zeroed)
	OpNewArr // Dst = allocate array, element Type, length A
	OpLoad   // Dst = A.Field
	OpStore  // A.Field = B
	OpLoadStatic
	OpStoreStatic
	OpALoad  // Dst = A[B], element Type
	OpAStore // A[B] = C
	OpALen   // Dst = length of A
	OpInstOf // Dst = A instanceof Type
	OpCast   // Dst = checked reference cast of A to Type

	// Calls and control flow.
	OpCall       // virtual call: dispatch M.Name on runtime class of A; args Args
	OpCallStatic // direct call of M (static method or constructor); args Args
	OpRet        // return A (or nothing if A == NoReg)
	OpJump       // goto Blk
	OpBranch     // if A goto Blk else Blk2
	OpIntr       // Dst = intrinsic Sym(Args...)

	// Monitors (program P uses the object lock word).
	OpMonEnter
	OpMonExit

	// Page half (program P', emitted by the FACADE transform).
	OpPNew      // Dst = allocate record of Cls in the current page manager
	OpPNewArr   // Dst = allocate array record, element Type, length A
	OpPLoad     // Dst = field Field of record A (A is a page ref)
	OpPStore    // field Field of record A = B
	OpPALoad    // Dst = element B of array record A, element Type
	OpPAStore   // element B of array record A = C
	OpPALen     // Dst = length of array record A
	OpPInstOf   // Dst = record A's type is (a subtype of) Cls / array Type
	OpPCast     // Dst = A after checking record type against Cls
	OpResolve   // Dst = receiver-pool facade for the runtime class of record A
	OpPoolGet   // Dst = parameter-pool facade Imm of class Cls (current thread)
	OpRecvPool  // Dst = receiver-pool facade of class Cls bound to record A (devirtualized resolve)
	OpPMonEnter // enter monitor of record A via the shared lock pool
	OpPMonExit  // exit monitor of record A
)

// NumOps is the number of opcode values; dispatch tables are sized by it.
const NumOps = int(OpPMonExit) + 1

var opNames = [...]string{
	OpNop: "nop", OpConst: "const", OpStrLit: "strlit", OpMove: "move",
	OpBin: "bin", OpUn: "un", OpConv: "conv",
	OpNew: "new", OpNewArr: "newarr", OpLoad: "load", OpStore: "store",
	OpLoadStatic: "loadstatic", OpStoreStatic: "storestatic",
	OpALoad: "aload", OpAStore: "astore", OpALen: "alen",
	OpInstOf: "instof", OpCast: "cast",
	OpCall: "call", OpCallStatic: "callstatic", OpRet: "ret",
	OpJump: "jump", OpBranch: "branch", OpIntr: "intr",
	OpMonEnter: "monenter", OpMonExit: "monexit",
	OpPNew: "pnew", OpPNewArr: "pnewarr", OpPLoad: "pload",
	OpPStore: "pstore", OpPALoad: "paload", OpPAStore: "pastore",
	OpPALen: "palen", OpPInstOf: "pinstof", OpPCast: "pcast",
	OpResolve: "resolve", OpPoolGet: "poolget", OpRecvPool: "recvpool",
	OpPMonEnter: "pmonenter", OpPMonExit: "pmonexit",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Sub selects the arithmetic/logic operation for OpBin and OpUn.
type Sub uint8

// Binary and unary sub-operations.
const (
	BinAdd Sub = iota
	BinSub
	BinMul
	BinDiv
	BinRem
	BinAnd
	BinOr
	BinXor
	BinShl
	BinShr
	BinLt
	BinLe
	BinGt
	BinGe
	BinEq
	BinNe
	UnNeg
	UnNot
)

var subNames = [...]string{
	BinAdd: "+", BinSub: "-", BinMul: "*", BinDiv: "/", BinRem: "%",
	BinAnd: "&", BinOr: "|", BinXor: "^", BinShl: "<<", BinShr: ">>",
	BinLt: "<", BinLe: "<=", BinGt: ">", BinGe: ">=", BinEq: "==",
	BinNe: "!=", UnNeg: "neg", UnNot: "not",
}

func (s Sub) String() string {
	if int(s) < len(subNames) {
		return subNames[s]
	}
	return fmt.Sprintf("sub(%d)", int(s))
}

// NumKind classifies the machine representation an arithmetic instruction
// operates on.
type NumKind uint8

// Numeric kinds.
const (
	KInt NumKind = iota
	KLong
	KDouble
	KBool
	KByte
	KRef
)

func (k NumKind) String() string {
	switch k {
	case KInt:
		return "int"
	case KLong:
		return "long"
	case KDouble:
		return "double"
	case KBool:
		return "bool"
	case KByte:
		return "byte"
	case KRef:
		return "ref"
	}
	return "?"
}

// KindOf maps a semantic type to its machine kind.
func KindOf(t *lang.Type) NumKind {
	switch t.Kind {
	case lang.TBool:
		return KBool
	case lang.TByte:
		return KByte
	case lang.TInt:
		return KInt
	case lang.TLong:
		return KLong
	case lang.TDouble:
		return KDouble
	default:
		return KRef
	}
}

// Instr is one IR instruction. A single fat struct keeps interpretation
// simple and cache-friendly; unused operands are zero/NoReg.
type Instr struct {
	Op       Op
	Sub      Sub
	NumKind  NumKind
	NumKind2 NumKind
	Dst      Reg
	A, B, C  Reg
	Args     []Reg
	Imm      int64
	F        float64
	Type     *lang.Type
	Cls      *lang.Class
	Field    *lang.Field
	M        *lang.Method
	Sym      string
	Blk      int
	Blk2     int
	Pos      lang.Pos
	// Site is the stable allocation-site ID of an OpNew/OpNewArr emitted
	// by the lowering pass (1..Program.NumSites). 0 means "no site":
	// either the instruction is not an allocation or it was synthesized
	// after lowering (transform helpers), in which case lifetime analysis
	// treats it as unknown. Site IDs survive the FACADE transform, so a
	// site classified on P applies to the control-heap allocations P'
	// retains.
	Site int32
	// Cache holds VM link data (resolved callee for OpCallStatic,
	// intrinsic index for OpIntr). Owned by the VM that linked the
	// program; programs are deep-copied by the transform so P and P'
	// never share instructions.
	Cache any
}

// Block is a basic block; the last instruction is always a terminator
// (OpJump, OpBranch, or OpRet).
type Block struct {
	ID     int
	Instrs []Instr
}

// Func is one compiled method body.
type Func struct {
	// Name is "Class.method"; constructors use "Class.<init>".
	Name     string
	Class    *lang.Class
	Method   *lang.Method
	NumRegs  int
	RegTypes []*lang.Type
	// Params lists the parameter registers in call order; for instance
	// methods Params[0] is the receiver.
	Params []Reg
	Blocks []*Block
	// Synthetic marks compiler-generated functions (conversion functions,
	// facade constructors).
	Synthetic bool
}

// NumInstrs returns the total instruction count, the unit the paper's
// compilation-speed numbers (instructions per second) are measured in.
func (f *Func) NumInstrs() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Instrs)
	}
	return n
}

// Program is a complete linked IR program.
type Program struct {
	H          *lang.Hierarchy
	Funcs      map[string]*Func
	StringPool []string
	// FuncList is Funcs in deterministic order.
	FuncList []*Func
	// Transformed is true for programs produced by the FACADE transform.
	Transformed bool
	// Facade transform metadata, set on transformed programs:
	// Bounds maps data class name -> parameter pool bound (§3.3).
	Bounds map[string]int
	// DataClasses is the set of data class names of the original program.
	DataClasses map[string]bool
	// DCERemoved counts instructions removed by dead-code elimination
	// (internal/analysis), for observability.
	DCERemoved int
	// NumSites is the number of allocation sites the lowering pass
	// numbered (Instr.Site ranges over 1..NumSites). Copied through the
	// FACADE transform so site IDs stay aligned between P and P'.
	NumSites int

	// linkOnce serializes the one-time, in-place population of
	// per-instruction dispatch caches (Instr.Imm/Instr.Cache, written by
	// the VM's linker). The cached values are pure functions of the
	// program, so every VM sharing this program sees identical caches;
	// the Once provides the happens-before edge that makes concurrent
	// VM construction over one shared program race-free.
	linkOnce sync.Once
	linkErr  error

	// lifetimeOnce memoizes the allocation-site lifetime classification
	// (internal/analysis computes it; facade.Run consumes it). Like the
	// link caches, the classification is a pure function of the program,
	// so memoizing it on the program makes repeated runs — warm daemon
	// pools, benchmarks — pay for the analysis once.
	lifetimeOnce sync.Once
	lifetimes    []Lifetime
}

// Lifetime is the allocation-site lifetime class inferred by the
// interprocedural lifetime pass (internal/analysis).
type Lifetime uint8

// Lifetime classes. The lattice is deliberately three-valued: the two
// actionable classes carry a soundness obligation (epoch-local sites are
// bulk-freed at iteration boundaries; long-lived sites skip the nursery),
// and everything the analysis cannot prove stays LifetimeUnknown, which
// allocates exactly as before.
const (
	LifetimeUnknown    Lifetime = iota // no proof either way; default young-gen path
	LifetimeEpochLocal                 // provably unreachable past the iteration boundary
	LifetimeLongLived                  // escapes and is not bounded by any epoch
)

func (l Lifetime) String() string {
	switch l {
	case LifetimeEpochLocal:
		return "epoch-local"
	case LifetimeLongLived:
		return "long-lived"
	default:
		return "unknown"
	}
}

// SiteLifetimes returns the memoized per-site lifetime classification,
// computing it with fn on first use. The returned slice is indexed by
// Instr.Site (index 0 is unused) and must not be mutated.
func (p *Program) SiteLifetimes(fn func() []Lifetime) []Lifetime {
	p.lifetimeOnce.Do(func() { p.lifetimes = fn() })
	return p.lifetimes
}

// LinkInstrs runs fn at most once per program, memoizing its error. The
// VM uses it to populate shared per-instruction caches exactly once, so
// concurrent VM construction and interpretation over the same program
// never race on the instruction stream.
func (p *Program) LinkInstrs(fn func() error) error {
	p.linkOnce.Do(func() { p.linkErr = fn() })
	return p.linkErr
}

// FuncKey builds the canonical function key for class + method name.
func FuncKey(class, method string) string { return class + "." + method }

// CtorKey builds the key of a constructor function.
func CtorKey(class string) string { return class + ".<init>" }

// AddFunc registers f, keeping FuncList ordered by insertion.
func (p *Program) AddFunc(f *Func) {
	if p.Funcs == nil {
		p.Funcs = make(map[string]*Func)
	}
	if _, dup := p.Funcs[f.Name]; dup {
		panic("duplicate function " + f.Name)
	}
	p.Funcs[f.Name] = f
	p.FuncList = append(p.FuncList, f)
}

// Intern adds s to the string pool and returns its index.
func (p *Program) Intern(s string) int {
	for i, x := range p.StringPool {
		if x == s {
			return i
		}
	}
	p.StringPool = append(p.StringPool, s)
	return len(p.StringPool) - 1
}

// NumInstrs returns the program's total instruction count.
func (p *Program) NumInstrs() int {
	n := 0
	for _, f := range p.FuncList {
		n += f.NumInstrs()
	}
	return n
}

// InstrsInClasses counts the instructions of functions owned by the named
// classes — the size of a data path, the unit of the paper's
// compilation-speed measurements.
func (p *Program) InstrsInClasses(names []string) int {
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	total := 0
	for _, f := range p.FuncList {
		if f.Class != nil && want[f.Class.Name] {
			total += f.NumInstrs()
		}
	}
	return total
}
