package ir

// The disassembler must round-trip every opcode: each Op prints its
// mnemonic, never the op(N) fallback, and printing is robust against the
// nil Cls/Field/Type slots that hand-built or partially-linked instructions
// can carry.

import (
	"strings"
	"testing"

	"repro/internal/lang"
)

func TestEveryOpcodeHasAName(t *testing.T) {
	for op := OpNop; op <= OpPMonExit; op++ {
		if s := op.String(); s == "" || strings.HasPrefix(s, "op(") {
			t.Errorf("opcode %d has no mnemonic (got %q)", int(op), s)
		}
	}
}

func TestInstrStringCoversEveryOpcode(t *testing.T) {
	cls := &lang.Class{Name: "C"}
	fld := &lang.Field{Name: "f", Owner: cls}
	m := &lang.Method{Name: "m", Owner: cls}
	typ := lang.IntType

	mk := func(op Op) Instr {
		return Instr{Op: op, Dst: NoReg, A: NoReg, B: NoReg, C: NoReg}
	}
	cases := make(map[Op]Instr)
	put := func(in Instr) { cases[in.Op] = in }

	c0 := mk(OpConst)
	c0.Dst, c0.Imm, c0.NumKind, c0.Type = 0, 42, KInt, typ
	put(c0)
	cd := mk(OpConst) // double constants print F, not Imm
	cd.Dst, cd.F, cd.NumKind, cd.Type = 0, 2.5, KDouble, lang.DoubleType
	// (covered by the same Op entry; just exercise String on it)
	_ = cd.String()

	sl := mk(OpStrLit)
	sl.Dst, sl.Imm = 1, 0
	put(sl)
	mv := mk(OpMove)
	mv.Dst, mv.A = 1, 0
	put(mv)
	bi := mk(OpBin)
	bi.Sub, bi.NumKind, bi.Dst, bi.A, bi.B = BinAdd, KInt, 2, 0, 1
	put(bi)
	un := mk(OpUn)
	un.Sub, un.Dst, un.A = UnNeg, 1, 0
	put(un)
	cv := mk(OpConv)
	cv.NumKind, cv.NumKind2, cv.Dst, cv.A = KInt, KDouble, 1, 0
	put(cv)

	for _, op := range []Op{OpNew, OpPNew} {
		in := mk(op)
		in.Dst, in.Cls = 1, cls
		put(in)
	}
	for _, op := range []Op{OpNewArr, OpPNewArr} {
		in := mk(op)
		in.Dst, in.A, in.Type = 1, 0, typ
		put(in)
	}
	for _, op := range []Op{OpLoad, OpPLoad} {
		in := mk(op)
		in.Dst, in.A, in.Field = 1, 0, fld
		put(in)
	}
	for _, op := range []Op{OpStore, OpPStore} {
		in := mk(op)
		in.A, in.B, in.Field = 0, 1, fld
		put(in)
	}
	ls := mk(OpLoadStatic)
	ls.Dst, ls.Field = 1, fld
	put(ls)
	ss := mk(OpStoreStatic)
	ss.A, ss.Field = 0, fld
	put(ss)
	for _, op := range []Op{OpALoad, OpPALoad} {
		in := mk(op)
		in.Dst, in.A, in.B, in.Type = 2, 0, 1, typ
		put(in)
	}
	for _, op := range []Op{OpAStore, OpPAStore} {
		in := mk(op)
		in.A, in.B, in.C, in.Type = 0, 1, 2, typ
		put(in)
	}
	for _, op := range []Op{OpALen, OpPALen} {
		in := mk(op)
		in.Dst, in.A = 1, 0
		put(in)
	}
	io := mk(OpInstOf)
	io.Dst, io.A, io.Type = 1, 0, lang.ClassType("C")
	put(io)
	ca := mk(OpCast)
	ca.Dst, ca.A, ca.Type = 1, 0, lang.ClassType("C")
	put(ca)
	pio := mk(OpPInstOf)
	pio.Dst, pio.A, pio.Cls = 1, 0, cls
	put(pio)
	pca := mk(OpPCast)
	pca.Dst, pca.A, pca.Cls = 1, 0, cls
	put(pca)

	call := mk(OpCall)
	call.Dst, call.A, call.M, call.Args = 2, 0, m, []Reg{0, 1}
	put(call)
	cs := mk(OpCallStatic)
	cs.Dst, cs.M, cs.Args = 2, m, []Reg{0, 1}
	put(cs)
	rt := mk(OpRet)
	rt.A = 0
	put(rt)
	jp := mk(OpJump)
	jp.Blk = 1
	put(jp)
	brn := mk(OpBranch)
	brn.A, brn.Blk, brn.Blk2 = 0, 1, 2
	put(brn)
	intr := mk(OpIntr)
	intr.Dst, intr.Sym, intr.Args = 1, "println", []Reg{0}
	put(intr)

	for _, op := range []Op{OpMonEnter, OpMonExit, OpPMonEnter, OpPMonExit} {
		in := mk(op)
		in.A = 0
		put(in)
	}
	rs := mk(OpResolve)
	rs.Dst, rs.A = 1, 0
	put(rs)
	pg := mk(OpPoolGet)
	pg.Dst, pg.Cls, pg.Imm = 1, cls, 0
	put(pg)
	rp := mk(OpRecvPool)
	rp.Dst, rp.A, rp.Cls = 1, 0, cls
	put(rp)
	put(mk(OpNop))

	for op := OpNop; op <= OpPMonExit; op++ {
		in, ok := cases[op]
		if !ok {
			t.Errorf("no test instance for opcode %v", op)
			continue
		}
		s := in.String()
		if s == "" {
			t.Errorf("%v: empty String()", op)
			continue
		}
		if !strings.Contains(s, op.String()) {
			t.Errorf("%v: String() %q does not contain the mnemonic", op, s)
		}
	}
}

func TestInstrStringNilSafety(t *testing.T) {
	// Partially-built instructions (as seen mid-lowering or in tests) must
	// never panic the printer.
	for op := OpNop; op <= OpPMonExit; op++ {
		in := Instr{Op: op, Dst: NoReg, A: NoReg, B: NoReg, C: NoReg}
		_ = in.String() // must not panic with nil Cls/Field/Type/M
	}
}
