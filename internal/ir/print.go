package ir

import (
	"fmt"
	"strings"

	"repro/internal/lang"
)

// String renders a function in a readable assembly-like form, used by tests
// and the facadec -dump flag.
func (f *Func) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s (regs=%d)\n", f.Name, f.NumRegs)
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, "b%d:\n", b.ID)
		for i := range b.Instrs {
			fmt.Fprintf(&sb, "  %s\n", b.Instrs[i].String())
		}
	}
	return sb.String()
}

func regStr(r Reg) string {
	if r == NoReg {
		return "_"
	}
	return fmt.Sprintf("r%d", r)
}

// clsStr and the field helpers keep String total: diagnostics must be able
// to print partially-built or corrupted instructions without panicking.
func clsStr(c *lang.Class) string {
	if c == nil {
		return "?"
	}
	return c.Name
}

func fieldName(f *lang.Field) string {
	if f == nil {
		return "?"
	}
	return f.Name
}

func fieldOffset(f *lang.Field) int {
	if f == nil {
		return -1
	}
	return f.Offset
}

func fieldOwner(f *lang.Field) string {
	if f == nil || f.Owner == nil {
		return "?"
	}
	return f.Owner.Name
}

func typeStr(t *lang.Type) string {
	if t == nil {
		return "?"
	}
	return t.String()
}

func sigStr(m *lang.Method) string {
	if m == nil {
		return "?"
	}
	// Sig formats the return type; tolerate half-built methods without one.
	if m.Ret == nil {
		return m.Name
	}
	return m.Sig()
}

// String renders one instruction.
func (in *Instr) String() string {
	var sb strings.Builder
	if in.Dst != NoReg {
		fmt.Fprintf(&sb, "%s = ", regStr(in.Dst))
	}
	fmt.Fprintf(&sb, "%s", in.Op)
	switch in.Op {
	case OpConst:
		if in.Type != nil && in.NumKind == KDouble {
			fmt.Fprintf(&sb, " %g", in.F)
		} else {
			fmt.Fprintf(&sb, " %d", in.Imm)
		}
	case OpStrLit:
		fmt.Fprintf(&sb, " #%d", in.Imm)
	case OpBin:
		fmt.Fprintf(&sb, " %s %s, %s (%s)", in.Sub, regStr(in.A), regStr(in.B), in.NumKind)
	case OpUn:
		fmt.Fprintf(&sb, " %s %s", in.Sub, regStr(in.A))
	case OpConv:
		fmt.Fprintf(&sb, " %s->%s %s", in.NumKind, in.NumKind2, regStr(in.A))
	case OpMove:
		fmt.Fprintf(&sb, " %s", regStr(in.A))
	case OpNew, OpPNew:
		fmt.Fprintf(&sb, " %s", clsStr(in.Cls))
	case OpNewArr, OpPNewArr:
		fmt.Fprintf(&sb, " %s[%s]", typeStr(in.Type), regStr(in.A))
	case OpLoad, OpPLoad:
		fmt.Fprintf(&sb, " %s.%s(+%d)", regStr(in.A), fieldName(in.Field), fieldOffset(in.Field))
	case OpStore, OpPStore:
		fmt.Fprintf(&sb, " %s.%s(+%d) <- %s", regStr(in.A), fieldName(in.Field), fieldOffset(in.Field), regStr(in.B))
	case OpLoadStatic:
		fmt.Fprintf(&sb, " %s.%s", fieldOwner(in.Field), fieldName(in.Field))
	case OpStoreStatic:
		fmt.Fprintf(&sb, " %s.%s <- %s", fieldOwner(in.Field), fieldName(in.Field), regStr(in.A))
	case OpALoad, OpPALoad:
		fmt.Fprintf(&sb, " %s[%s]", regStr(in.A), regStr(in.B))
	case OpAStore, OpPAStore:
		fmt.Fprintf(&sb, " %s[%s] <- %s", regStr(in.A), regStr(in.B), regStr(in.C))
	case OpALen, OpPALen:
		fmt.Fprintf(&sb, " %s", regStr(in.A))
	case OpInstOf:
		fmt.Fprintf(&sb, " %s %s", regStr(in.A), typeStr(in.Type))
	case OpPInstOf:
		if in.Cls != nil {
			fmt.Fprintf(&sb, " %s %s", regStr(in.A), in.Cls.Name)
		} else {
			fmt.Fprintf(&sb, " %s %s", regStr(in.A), typeStr(in.Type))
		}
	case OpCast:
		fmt.Fprintf(&sb, " %s to %s", regStr(in.A), typeStr(in.Type))
	case OpPCast:
		if in.Cls != nil {
			fmt.Fprintf(&sb, " %s to %s", regStr(in.A), in.Cls.Name)
		} else {
			fmt.Fprintf(&sb, " %s to %s", regStr(in.A), typeStr(in.Type))
		}
	case OpCall, OpCallStatic:
		fmt.Fprintf(&sb, " %s recv=%s args=(", sigStr(in.M), regStr(in.A))
		for i, a := range in.Args {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(regStr(a))
		}
		sb.WriteString(")")
	case OpRet:
		if in.A != NoReg {
			fmt.Fprintf(&sb, " %s", regStr(in.A))
		}
	case OpJump:
		fmt.Fprintf(&sb, " b%d", in.Blk)
	case OpBranch:
		fmt.Fprintf(&sb, " %s ? b%d : b%d", regStr(in.A), in.Blk, in.Blk2)
	case OpIntr:
		fmt.Fprintf(&sb, " %s(", in.Sym)
		for i, a := range in.Args {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(regStr(a))
		}
		sb.WriteString(")")
	case OpMonEnter, OpMonExit, OpPMonEnter, OpPMonExit:
		fmt.Fprintf(&sb, " %s", regStr(in.A))
	case OpResolve:
		fmt.Fprintf(&sb, " %s", regStr(in.A))
	case OpPoolGet:
		fmt.Fprintf(&sb, " %s[%d]", clsStr(in.Cls), in.Imm)
	case OpRecvPool:
		fmt.Fprintf(&sb, " %s <- %s", clsStr(in.Cls), regStr(in.A))
	}
	return sb.String()
}

// Verify checks structural invariants: every block ends in a terminator,
// jump targets exist, and register indices are in range. It returns the
// first violation found.
func (f *Func) Verify() error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("%s: no blocks", f.Name)
	}
	nb := len(f.Blocks)
	for i, b := range f.Blocks {
		if b.ID != i {
			return fmt.Errorf("%s: block %d has ID %d", f.Name, i, b.ID)
		}
		if len(b.Instrs) == 0 {
			return fmt.Errorf("%s: empty block b%d", f.Name, i)
		}
		for j := range b.Instrs {
			in := &b.Instrs[j]
			isTerm := in.Op == OpJump || in.Op == OpBranch || in.Op == OpRet
			if j == len(b.Instrs)-1 && !isTerm {
				return fmt.Errorf("%s: b%d does not end in a terminator", f.Name, i)
			}
			if j < len(b.Instrs)-1 && isTerm {
				return fmt.Errorf("%s: b%d has terminator mid-block", f.Name, i)
			}
			for _, r := range []Reg{in.Dst, in.A, in.B, in.C} {
				if r != NoReg && (r < 0 || int(r) >= f.NumRegs) {
					return fmt.Errorf("%s: b%d instr %d: register %d out of range", f.Name, i, j, r)
				}
			}
			for _, r := range in.Args {
				if r < 0 || int(r) >= f.NumRegs {
					return fmt.Errorf("%s: b%d instr %d: arg register %d out of range", f.Name, i, j, r)
				}
			}
			if in.Op == OpJump || in.Op == OpBranch {
				if in.Blk < 0 || in.Blk >= nb {
					return fmt.Errorf("%s: b%d: bad jump target b%d", f.Name, i, in.Blk)
				}
			}
			if in.Op == OpBranch && (in.Blk2 < 0 || in.Blk2 >= nb) {
				return fmt.Errorf("%s: b%d: bad branch target b%d", f.Name, i, in.Blk2)
			}
		}
	}
	if len(f.RegTypes) != f.NumRegs {
		return fmt.Errorf("%s: RegTypes length %d != NumRegs %d", f.Name, len(f.RegTypes), f.NumRegs)
	}
	return nil
}

// Verify checks all functions in the program.
func (p *Program) Verify() error {
	for _, f := range p.FuncList {
		if err := f.Verify(); err != nil {
			return err
		}
	}
	return nil
}
