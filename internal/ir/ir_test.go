package ir

import (
	"strings"
	"testing"

	"repro/internal/lang"
)

func validFunc() *Func {
	f := &Func{Name: "T.m", NumRegs: 2, RegTypes: []*lang.Type{lang.IntType, lang.IntType}}
	f.Blocks = []*Block{
		{ID: 0, Instrs: []Instr{
			{Op: OpConst, Dst: 0, A: NoReg, B: NoReg, C: NoReg, Imm: 5, NumKind: KInt, Type: lang.IntType},
			{Op: OpJump, Dst: NoReg, A: NoReg, B: NoReg, C: NoReg, Blk: 1},
		}},
		{ID: 1, Instrs: []Instr{
			{Op: OpRet, Dst: NoReg, A: 0, B: NoReg, C: NoReg},
		}},
	}
	return f
}

func TestVerifyAcceptsValid(t *testing.T) {
	if err := validFunc().Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyRejections(t *testing.T) {
	cases := map[string]func(*Func){
		"no blocks":         func(f *Func) { f.Blocks = nil },
		"empty block":       func(f *Func) { f.Blocks[1].Instrs = nil },
		"bad block id":      func(f *Func) { f.Blocks[1].ID = 7 },
		"no terminator":     func(f *Func) { f.Blocks[1].Instrs[0].Op = OpConst },
		"mid terminator":    func(f *Func) { f.Blocks[0].Instrs[0] = Instr{Op: OpRet, Dst: NoReg, A: NoReg, B: NoReg, C: NoReg} },
		"reg out of range":  func(f *Func) { f.Blocks[0].Instrs[0].Dst = 9 },
		"bad jump target":   func(f *Func) { f.Blocks[0].Instrs[1].Blk = 3 },
		"regtypes mismatch": func(f *Func) { f.RegTypes = f.RegTypes[:1] },
	}
	for name, mutate := range cases {
		f := validFunc()
		mutate(f)
		if err := f.Verify(); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
}

func TestProgramHelpers(t *testing.T) {
	p := &Program{}
	f := validFunc()
	p.AddFunc(f)
	if p.Funcs["T.m"] != f || len(p.FuncList) != 1 {
		t.Fatal("AddFunc")
	}
	if p.NumInstrs() != 3 {
		t.Fatalf("NumInstrs %d", p.NumInstrs())
	}
	i1 := p.Intern("x")
	i2 := p.Intern("y")
	i3 := p.Intern("x")
	if i1 != i3 || i1 == i2 {
		t.Fatal("interning")
	}
	if FuncKey("A", "m") != "A.m" || CtorKey("A") != "A.<init>" {
		t.Fatal("keys")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate AddFunc must panic")
		}
	}()
	p.AddFunc(validFunc())
}

func TestInstrsInClasses(t *testing.T) {
	p := &Program{}
	f := validFunc()
	f.Class = &lang.Class{Name: "T"}
	p.AddFunc(f)
	g := validFunc()
	g.Name = "U.m"
	g.Class = &lang.Class{Name: "U"}
	p.AddFunc(g)
	if p.InstrsInClasses([]string{"T"}) != 3 {
		t.Fatal("filter by class")
	}
	if p.InstrsInClasses([]string{"T", "U"}) != 6 {
		t.Fatal("filter by both")
	}
}

func TestKindOf(t *testing.T) {
	cases := map[*lang.Type]NumKind{
		lang.BoolType:              KBool,
		lang.ByteType:              KByte,
		lang.IntType:               KInt,
		lang.LongType:              KLong,
		lang.DoubleType:            KDouble,
		lang.ClassType("X"):        KRef,
		lang.ArrayOf(lang.IntType): KRef,
	}
	for ty, want := range cases {
		if KindOf(ty) != want {
			t.Fatalf("KindOf(%s) = %v", ty, KindOf(ty))
		}
	}
}

// TestInstrPrinterCoversAllOps renders one instruction of every opcode;
// the printer must produce non-empty, opcode-tagged text for each.
func TestInstrPrinterCoversAllOps(t *testing.T) {
	cls := &lang.Class{Name: "C"}
	fld := &lang.Field{Name: "f", Type: lang.IntType, Owner: cls}
	sfld := &lang.Field{Name: "s", Type: lang.IntType, Owner: cls, Static: true}
	m := &lang.Method{Name: "m", Owner: cls, Ret: lang.IntType}
	instrs := []Instr{
		{Op: OpConst, Dst: 0, NumKind: KInt, Imm: 5, Type: lang.IntType},
		{Op: OpConst, Dst: 0, NumKind: KDouble, F: 1.5, Type: lang.DoubleType},
		{Op: OpStrLit, Dst: 0, Imm: 2},
		{Op: OpMove, Dst: 0, A: 1},
		{Op: OpBin, Dst: 0, A: 1, B: 2, Sub: BinAdd, NumKind: KInt},
		{Op: OpUn, Dst: 0, A: 1, Sub: UnNeg, NumKind: KInt},
		{Op: OpConv, Dst: 0, A: 1, NumKind: KInt, NumKind2: KDouble},
		{Op: OpNew, Dst: 0, Cls: cls},
		{Op: OpNewArr, Dst: 0, A: 1, Type: lang.IntType},
		{Op: OpLoad, Dst: 0, A: 1, Field: fld},
		{Op: OpStore, A: 0, B: 1, Field: fld},
		{Op: OpLoadStatic, Dst: 0, Field: sfld},
		{Op: OpStoreStatic, A: 0, Field: sfld},
		{Op: OpALoad, Dst: 0, A: 1, B: 2, Type: lang.IntType},
		{Op: OpAStore, A: 0, B: 1, C: 2, Type: lang.IntType},
		{Op: OpALen, Dst: 0, A: 1},
		{Op: OpInstOf, Dst: 0, A: 1, Type: lang.ClassType("C")},
		{Op: OpCast, Dst: 0, A: 1, Type: lang.ClassType("C")},
		{Op: OpCall, Dst: 0, A: 1, M: m, Args: []Reg{2, 3}},
		{Op: OpCallStatic, Dst: 0, M: m, Args: []Reg{2}},
		{Op: OpRet, A: 0},
		{Op: OpRet, A: NoReg},
		{Op: OpJump, Blk: 1},
		{Op: OpBranch, A: 0, Blk: 1, Blk2: 2},
		{Op: OpIntr, Dst: 0, Sym: "rand", Args: []Reg{1}},
		{Op: OpMonEnter, A: 0},
		{Op: OpMonExit, A: 0},
		{Op: OpPNew, Dst: 0, Cls: cls, Imm: 16},
		{Op: OpPNewArr, Dst: 0, A: 1, Type: lang.IntType},
		{Op: OpPLoad, Dst: 0, A: 1, Field: fld},
		{Op: OpPStore, A: 0, B: 1, Field: fld},
		{Op: OpPALoad, Dst: 0, A: 1, B: 2, Type: lang.IntType},
		{Op: OpPAStore, A: 0, B: 1, C: 2, Type: lang.IntType},
		{Op: OpPALen, Dst: 0, A: 1},
		{Op: OpPInstOf, Dst: 0, A: 1, Cls: cls},
		{Op: OpPInstOf, Dst: 0, A: 1, Type: lang.ArrayOf(lang.IntType)},
		{Op: OpPCast, Dst: 0, A: 1, Cls: cls},
		{Op: OpResolve, Dst: 0, A: 1},
		{Op: OpPoolGet, Dst: 0, Cls: cls, Imm: 1},
		{Op: OpRecvPool, Dst: 0, A: 1, Cls: cls},
		{Op: OpPMonEnter, A: 0},
		{Op: OpPMonExit, A: 0},
	}
	for i := range instrs {
		// Normalize unset register fields the builders would set.
		s := instrs[i].String()
		if s == "" {
			t.Fatalf("op %s printed empty", instrs[i].Op)
		}
		if !strings.Contains(s, instrs[i].Op.String()) {
			t.Fatalf("op %s missing from %q", instrs[i].Op, s)
		}
	}
}

func TestOpAndSubStrings(t *testing.T) {
	if OpPNew.String() != "pnew" || OpResolve.String() != "resolve" || OpRecvPool.String() != "recvpool" {
		t.Fatal("op names")
	}
	if BinAdd.String() != "+" || UnNot.String() != "not" {
		t.Fatal("sub names")
	}
	if !strings.Contains(Op(200).String(), "op(") {
		t.Fatal("unknown op formatting")
	}
}
