package analysis

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/lang"
)

// This file implements the interprocedural allocation-site lifetime pass.
// Every OpNew/OpNewArr the lowering pass numbered (Instr.Site) is placed in
// a three-valued lattice:
//
//   - ir.LifetimeEpochLocal: the allocation happens at a program point
//     provably inside an iteration (the same canIn/canOut region machine
//     the facade-leak lint runs), the value never escapes the allocating
//     frame (no field/array/static store, not returned, not passed to a
//     callee whose summary says the parameter escapes, no virtual call),
//     and it is dead before every point that may cross an iteration
//     boundary (a Sys.iterEnd, or a call into a function that transitively
//     contains one). Such values can live in a per-epoch bump region that
//     is bulk-reset at the boundary.
//
//   - ir.LifetimeLongLived: the value escapes and the allocation is NOT
//     proven inside an iteration — the shape of setup-phase allocations
//     (graph vertices, edge tables) that survive into the steady state.
//     These pretenure straight into the old generation, skipping scavenge
//     copies. Placement is a pure performance hint; a mispredicted
//     long-lived object is still collected correctly by the full GC.
//
//   - ir.LifetimeUnknown: everything else; allocates exactly as before.
//
// Escape summaries are computed per function by a monotone fixpoint over
// the whole program: for each parameter, whether it may escape (stored,
// returned, or passed along an escaping path), and whether the function
// may transitively execute an iteration boundary ("touchesEpoch").
// Virtual calls are resolved conservatively by selector name: every
// same-name instance method is a possible target.
//
// Soundness note (what keeps enforce mode bit-identical): the epoch-local
// proof only ever talks about the allocating thread's innermost epoch.
// A value that never escapes lives only in this frame's registers (and
// callees that provably do not retain or cross a boundary), so its whole
// live range sits between two boundary crossings of its own thread — and
// per-thread epoch regions are only reset at those crossings. If the site
// executes while no epoch is active, the runtime falls back to the young
// generation and the profiler demotes the site.

// SiteClass is the classification of one allocation site, with enough
// context to render a file:line report (facadec vet -lifetimes).
type SiteClass struct {
	Site   int32
	Func   string
	Pos    lang.Pos
	What   string // "new Cls" or "new Elem[]"
	Class  ir.Lifetime
	Reason string
}

func (s SiteClass) String() string {
	pos := s.Pos.String()
	if s.Pos.Line == 0 {
		pos = s.Func
	}
	return fmt.Sprintf("%s: [lifetime] site #%d %s: %s (%s, in %s)",
		pos, s.Site, s.What, s.Class, s.Reason, s.Func)
}

// Lifetimes returns the per-site lifetime classification of p, indexed by
// Instr.Site (index 0 unused). The result is memoized on the program.
func Lifetimes(p *ir.Program) []ir.Lifetime {
	return p.SiteLifetimes(func() []ir.Lifetime {
		out := make([]ir.Lifetime, p.NumSites+1)
		for _, sc := range LifetimeReport(p) {
			out[sc.Site] = sc.Class
		}
		return out
	})
}

// LifetimeReport runs the full analysis and returns every numbered site's
// classification in deterministic (function, block, instruction) order.
func LifetimeReport(p *ir.Program) []SiteClass {
	la := newLifetimeAnalysis(p)
	la.solveSummaries()
	la.refineEntries()
	var out []SiteClass
	for _, f := range p.FuncList {
		out = append(out, la.classifyFunc(f)...)
	}
	return out
}

// --- interprocedural summaries ---------------------------------------------

// funcSummary is the conservative interprocedural summary of one function.
type funcSummary struct {
	// paramEsc[i] reports whether parameter i may escape: stored into a
	// field/array/static, returned, passed to an escaping parameter of a
	// callee, or passed to any virtual call.
	paramEsc []bool
	// touches reports whether the function may execute an iteration
	// boundary (Sys.iterStart/iterEnd), directly or transitively.
	touches bool
}

type lifetimeAnalysis struct {
	p    *ir.Program
	sums map[string]*funcSummary
	// virtTouches[name] reports whether any instance method with that
	// selector name touches an epoch (conservative virtual dispatch).
	virtTouches map[string]bool
	// virtTargets holds selector names invoked by some OpCall; functions
	// implementing one can be entered without a visible IR call site.
	virtTargets map[string]bool
	// entry holds the region-machine entry state (canIn, canOut) assumed
	// for each function. Default is the unknown (true, true).
	entry map[string][2]bool
	cfgs  map[string]*CFG
}

func newLifetimeAnalysis(p *ir.Program) *lifetimeAnalysis {
	la := &lifetimeAnalysis{
		p:           p,
		sums:        make(map[string]*funcSummary, len(p.FuncList)),
		virtTouches: make(map[string]bool),
		virtTargets: make(map[string]bool),
		entry:       make(map[string][2]bool, len(p.FuncList)),
		cfgs:        make(map[string]*CFG, len(p.FuncList)),
	}
	for _, f := range p.FuncList {
		la.sums[f.Name] = &funcSummary{paramEsc: make([]bool, len(f.Params))}
		la.entry[f.Name] = [2]bool{true, true}
		la.cfgs[f.Name] = BuildCFG(f)
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				if b.Instrs[i].Op == ir.OpCall && b.Instrs[i].M != nil {
					la.virtTargets[b.Instrs[i].M.Name] = true
				}
			}
		}
	}
	// The program entry starts outside any iteration. Everything else —
	// including functions the Go-side engines call across the boundary —
	// keeps the unknown entry state.
	if _, ok := la.entry["Main.main"]; ok {
		la.entry["Main.main"] = [2]bool{false, true}
	}
	return la
}

func calleeSummaryKey(m *lang.Method) string {
	if m.IsCtor {
		return ir.CtorKey(m.Owner.Name)
	}
	return ir.FuncKey(m.Owner.Name, m.Name)
}

// solveSummaries iterates escape + touchesEpoch summaries to a fixpoint.
// All facts are monotone booleans, so iteration terminates.
func (la *lifetimeAnalysis) solveSummaries() {
	for changed := true; changed; {
		changed = false
		// Selector-level touches: union over same-name instance methods.
		for _, f := range la.p.FuncList {
			if f.Method != nil && !f.Method.Static && la.sums[f.Name].touches &&
				!la.virtTouches[f.Method.Name] {
				la.virtTouches[f.Method.Name] = true
				changed = true
			}
		}
		for _, f := range la.p.FuncList {
			r := la.analyzeFunc(f, nil)
			sum := la.sums[f.Name]
			for i := range f.Params {
				if r.escaped[i] && !sum.paramEsc[i] {
					sum.paramEsc[i] = true
					changed = true
				}
			}
			if r.touches && !sum.touches {
				sum.touches = true
				changed = true
			}
		}
	}
}

// refineEntries runs one sound refinement round over entry contexts: a
// function that is never a virtual-dispatch target, is not the program
// entry, and whose every static call site sits at a proven-inside region
// state inherits the proven-inside entry (true, false). One round only —
// refined facts are derived purely from the conservative round.
func (la *lifetimeAnalysis) refineEntries() {
	type callCtx struct{ seen, allInside bool }
	calls := make(map[string]*callCtx)
	for _, f := range la.p.FuncList {
		r := la.analyzeFunc(f, nil)
		for key, inside := range r.calleeInside {
			c := calls[key]
			if c == nil {
				c = &callCtx{allInside: true}
				calls[key] = c
			}
			c.seen = true
			c.allInside = c.allInside && inside
		}
	}
	for _, f := range la.p.FuncList {
		if f.Name == "Main.main" {
			continue
		}
		if f.Method != nil && !f.Method.Static && la.virtTargets[f.Method.Name] {
			continue
		}
		if c := calls[f.Name]; c != nil && c.seen && c.allInside {
			la.entry[f.Name] = [2]bool{true, false}
		}
	}
}

// classifyFunc produces the final per-site classification for f.
func (la *lifetimeAnalysis) classifyFunc(f *ir.Func) []SiteClass {
	r := la.analyzeFunc(f, nil)
	out := make([]SiteClass, 0, len(r.sites))
	for i, site := range r.sites {
		ti := len(f.Params) + i
		in := &f.Blocks[site.block].Instrs[site.index]
		what := "new ?"
		if in.Op == ir.OpNew && in.Cls != nil {
			what = "new " + in.Cls.Name
		} else if in.Op == ir.OpNewArr && in.Type != nil {
			what = "new " + in.Type.String() + "[]"
		}
		sc := SiteClass{Site: in.Site, Func: f.Name, Pos: in.Pos, What: what}
		switch {
		case !r.escaped[ti] && !r.crossed[ti] && r.inside[i]:
			sc.Class = ir.LifetimeEpochLocal
			sc.Reason = "allocated inside an iteration, never escapes, dead before every boundary"
		case r.escaped[ti] && !r.inside[i]:
			sc.Class = ir.LifetimeLongLived
			sc.Reason = "escapes (" + r.escapeWhy[ti] + ") outside any proven iteration"
		case r.escaped[ti]:
			sc.Class = ir.LifetimeUnknown
			sc.Reason = "escapes (" + r.escapeWhy[ti] + ") inside an iteration"
		case r.crossed[ti]:
			sc.Class = ir.LifetimeUnknown
			sc.Reason = "live across a possible iteration boundary"
		default:
			sc.Class = ir.LifetimeUnknown
			sc.Reason = "allocation not proven inside an iteration"
		}
		out = append(out, sc)
	}
	return out
}

// --- intra-function flow analysis ------------------------------------------

// ltSite is one numbered allocation site within a function.
type ltSite struct {
	block, index int
}

// ltResult is everything one intra-function pass learns about its tracked
// values. Tracked indices are parameters first (0..len(Params)-1), then
// sites in (block, index) order.
type ltResult struct {
	sites     []ltSite
	escaped   []bool   // per tracked value
	escapeWhy []string // first escape reason, per tracked value
	crossed   []bool   // per tracked value: live across a possible boundary
	inside    []bool   // per site: region state proven inside at the alloc
	touches   bool     // function contains/reaches an iteration boundary
	// calleeInside maps each statically called function key to whether
	// every call to it from this function sits at a proven-inside state.
	calleeInside map[string]bool
}

// ltState is the per-block abstract state: one may-alias register set per
// tracked value plus the two-bit iteration region state.
type ltState struct {
	taint         []BitSet
	canIn, canOut bool
}

func newLtState(n, regs int) *ltState {
	s := &ltState{taint: make([]BitSet, n)}
	for i := range s.taint {
		s.taint[i] = NewBitSet(regs)
	}
	return s
}

func (s *ltState) copyFrom(t *ltState) {
	for i := range s.taint {
		s.taint[i].CopyFrom(t.taint[i])
	}
	s.canIn, s.canOut = t.canIn, t.canOut
}

func (s *ltState) mergeFrom(t *ltState) bool {
	changed := false
	for i := range s.taint {
		changed = s.taint[i].UnionWith(t.taint[i]) || changed
	}
	if t.canIn && !s.canIn {
		s.canIn = true
		changed = true
	}
	if t.canOut && !s.canOut {
		s.canOut = true
		changed = true
	}
	return changed
}

// epochUnsafe reports whether executing in may cross an iteration boundary
// (other than the iterStart/iterEnd intrinsics, which the region machine
// models directly).
func (la *lifetimeAnalysis) epochUnsafe(in *ir.Instr) bool {
	switch in.Op {
	case ir.OpCall:
		return in.M == nil || la.virtTouches[in.M.Name]
	case ir.OpCallStatic:
		if in.M == nil {
			return true
		}
		sum := la.sums[calleeSummaryKey(in.M)]
		return sum == nil || sum.touches
	}
	return false
}

// step advances the abstract state across one instruction. sites lists the
// function's tracked sites so the defining instruction regenerates its own
// taint.
func (la *lifetimeAnalysis) step(s *ltState, f *ir.Func, b, j int, sites []ltSite, nParams int) {
	in := &f.Blocks[b].Instrs[j]
	if in.Op == ir.OpIntr {
		switch in.Sym {
		case "iterStart":
			s.canIn, s.canOut = true, false
		case "iterEnd":
			s.canIn, s.canOut = false, true
		}
	}
	if la.epochUnsafe(in) {
		// The callee may leave us in either region.
		s.canIn, s.canOut = true, true
	}
	d := Def(in)
	if d == ir.NoReg {
		return
	}
	for t := range s.taint {
		gen := false
		switch in.Op {
		case ir.OpMove, ir.OpCast:
			gen = s.taint[t].Has(int(in.A))
		case ir.OpNew, ir.OpNewArr:
			if t >= nParams {
				site := sites[t-nParams]
				gen = site.block == b && site.index == j
			}
		}
		if gen {
			s.taint[t].Set(int(d))
		} else {
			s.taint[t].Clear(int(d))
		}
	}
}

// analyzeFunc runs the intra-function fixpoint + replay for f under the
// current summaries and entry contexts. The result is deterministic for a
// given analysis state. entryOverride, if non-nil, replaces the recorded
// entry region state (used by tests).
func (la *lifetimeAnalysis) analyzeFunc(f *ir.Func, entryOverride *[2]bool) *ltResult {
	c := la.cfgs[f.Name]
	_, liveOut := Liveness(c)

	var sites []ltSite
	for b, blk := range f.Blocks {
		if !c.Reachable(b) {
			continue
		}
		for j := range blk.Instrs {
			in := &blk.Instrs[j]
			if (in.Op == ir.OpNew || in.Op == ir.OpNewArr) && in.Site != 0 {
				sites = append(sites, ltSite{block: b, index: j})
			}
		}
	}
	nParams := len(f.Params)
	nTracked := nParams + len(sites)
	r := &ltResult{
		sites:        sites,
		escaped:      make([]bool, nTracked),
		escapeWhy:    make([]string, nTracked),
		crossed:      make([]bool, nTracked),
		inside:       make([]bool, len(sites)),
		calleeInside: make(map[string]bool),
	}

	n := len(f.Blocks)
	if n == 0 {
		return r
	}
	ins := make([]*ltState, n)
	outs := make([]*ltState, n)
	for i := 0; i < n; i++ {
		ins[i] = newLtState(nTracked, f.NumRegs)
		outs[i] = newLtState(nTracked, f.NumRegs)
	}
	ent := la.entry[f.Name]
	if entryOverride != nil {
		ent = *entryOverride
	}
	ins[0].canIn, ins[0].canOut = ent[0], ent[1]
	for i, pr := range f.Params {
		ins[0].taint[i].Set(int(pr))
	}

	tmp := newLtState(nTracked, f.NumRegs)
	for changed := true; changed; {
		changed = false
		for _, b := range c.RPO {
			for _, pred := range c.Preds[b] {
				if c.Reachable(pred) {
					ins[b].mergeFrom(outs[pred])
				}
			}
			tmp.copyFrom(ins[b])
			for j := range f.Blocks[b].Instrs {
				la.step(tmp, f, b, j, sites, nParams)
			}
			if outs[b].mergeFrom(tmp) {
				changed = true
			}
		}
	}

	// Replay each reachable block from its fixpoint in-state, recording
	// escapes, boundary crossings, proven-inside alloc states, and the
	// region state at every static call site.
	escape := func(st *ltState, reg ir.Reg, why string) {
		if reg == ir.NoReg {
			return
		}
		for t := 0; t < nTracked; t++ {
			if st.taint[t].Has(int(reg)) && !r.escaped[t] {
				r.escaped[t] = true
				r.escapeWhy[t] = why
			}
		}
	}
	st := newLtState(nTracked, f.NumRegs)
	for _, b := range c.RPO {
		st.copyFrom(ins[b])
		after := LiveAfter(c, liveOut, b)
		for j := range f.Blocks[b].Instrs {
			in := &f.Blocks[b].Instrs[j]
			switch in.Op {
			case ir.OpNew, ir.OpNewArr:
				if in.Site != 0 {
					for i, site := range sites {
						if site.block == b && site.index == j {
							r.inside[i] = r.inside[i] || (st.canIn && !st.canOut)
						}
					}
				}
			case ir.OpStore:
				escape(st, in.B, "stored into a field")
			case ir.OpAStore:
				escape(st, in.C, "stored into an array")
			case ir.OpStoreStatic:
				escape(st, in.A, "stored into a static")
			case ir.OpRet:
				escape(st, in.A, "returned")
			case ir.OpCall:
				// Conservative virtual dispatch: every argument escapes.
				escape(st, in.A, "passed to a virtual call")
				for _, a := range in.Args {
					escape(st, a, "passed to a virtual call")
				}
			case ir.OpCallStatic:
				if in.M != nil {
					key := calleeSummaryKey(in.M)
					inside := st.canIn && !st.canOut
					if prev, seen := r.calleeInside[key]; seen {
						r.calleeInside[key] = prev && inside
					} else {
						r.calleeInside[key] = inside
					}
					sum := la.sums[key]
					// Effective parameter order mirrors the call
					// convention: receiver (if any) first, then Args.
					args := in.Args
					if in.A != ir.NoReg {
						args = append([]ir.Reg{in.A}, in.Args...)
					}
					for i, a := range args {
						if sum == nil || i >= len(sum.paramEsc) || sum.paramEsc[i] {
							escape(st, a, "passed to "+key)
						}
					}
				} else {
					escape(st, in.A, "passed to an unresolved call")
					for _, a := range in.Args {
						escape(st, a, "passed to an unresolved call")
					}
				}
			case ir.OpIntr:
				if in.Sym == "iterStart" || in.Sym == "iterEnd" {
					r.touches = true
				}
			}
			// Boundary crossings: a value live across Sys.iterEnd, or live
			// across / passed into a call that may reach a boundary, is not
			// epoch-local.
			boundary := in.Op == ir.OpIntr && in.Sym == "iterEnd"
			unsafe := la.epochUnsafe(in)
			if unsafe {
				r.touches = true
			}
			if boundary || unsafe {
				for t := 0; t < nTracked; t++ {
					if r.crossed[t] {
						continue
					}
					live := false
					for reg := 0; reg < f.NumRegs && !live; reg++ {
						if st.taint[t].Has(reg) && after[j].Has(reg) {
							live = true
						}
					}
					if !live && unsafe {
						if in.A != ir.NoReg && st.taint[t].Has(int(in.A)) {
							live = true
						}
						for _, a := range in.Args {
							if a != ir.NoReg && st.taint[t].Has(int(a)) {
								live = true
							}
						}
					}
					if live {
						r.crossed[t] = true
					}
				}
			}
			la.step(st, f, b, j, sites, nParams)
		}
	}
	return r
}
