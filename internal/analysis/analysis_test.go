package analysis

// Unit tests for the dataflow framework on hand-built IR: BitSets, CFG
// construction, dominators, witness paths, liveness, must-defined,
// reaching definitions, DCE, and pool-bound tightening.

import (
	"reflect"
	"testing"

	"repro/internal/ir"
	"repro/internal/lang"
)

// --- IR construction helpers ----------------------------------------------

func instr(op ir.Op) ir.Instr {
	return ir.Instr{Op: op, Dst: ir.NoReg, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg}
}

func konst(dst ir.Reg, v int64) ir.Instr {
	in := instr(ir.OpConst)
	in.Dst, in.Imm, in.NumKind = dst, v, ir.KInt
	return in
}

func mov(dst, src ir.Reg) ir.Instr {
	in := instr(ir.OpMove)
	in.Dst, in.A = dst, src
	return in
}

func add(dst, a, b ir.Reg) ir.Instr {
	in := instr(ir.OpBin)
	in.Sub, in.NumKind = ir.BinAdd, ir.KInt
	in.Dst, in.A, in.B = dst, a, b
	return in
}

func jmp(blk int) ir.Instr {
	in := instr(ir.OpJump)
	in.Blk = blk
	return in
}

func br(cond ir.Reg, t, f int) ir.Instr {
	in := instr(ir.OpBranch)
	in.A, in.Blk, in.Blk2 = cond, t, f
	return in
}

func ret(a ir.Reg) ir.Instr {
	in := instr(ir.OpRet)
	in.A = a
	return in
}

func mkFunc(numRegs int, blocks ...[]ir.Instr) *ir.Func {
	f := &ir.Func{Name: "T.test", NumRegs: numRegs}
	for i := 0; i < numRegs; i++ {
		f.RegTypes = append(f.RegTypes, lang.IntType)
	}
	for i, ins := range blocks {
		f.Blocks = append(f.Blocks, &ir.Block{ID: i, Instrs: ins})
	}
	return f
}

// diamond builds b0 -> {b1, b2} -> b3, with r0 defined in b0 and r1
// defined only on the b1 arm.
func diamond() *ir.Func {
	return mkFunc(3,
		[]ir.Instr{konst(0, 1), br(0, 1, 2)},
		[]ir.Instr{konst(1, 2), jmp(3)},
		[]ir.Instr{jmp(3)},
		[]ir.Instr{ret(0)},
	)
}

// --- tests ----------------------------------------------------------------

func TestBitSet(t *testing.T) {
	s := NewBitSet(130)
	s.Set(0)
	s.Set(64)
	s.Set(129)
	if !s.Has(0) || !s.Has(64) || !s.Has(129) || s.Has(1) {
		t.Fatal("set/has broken")
	}
	if s.Count() != 3 {
		t.Fatalf("count = %d, want 3", s.Count())
	}
	s.Clear(64)
	if s.Has(64) || s.Count() != 2 {
		t.Fatal("clear broken")
	}
	u := NewBitSet(130)
	u.Set(5)
	if !u.UnionWith(s) || !u.Has(0) || !u.Has(5) || !u.Has(129) {
		t.Fatal("union broken")
	}
	if u.UnionWith(s) {
		t.Fatal("second union reported change")
	}
	v := s.Copy()
	if !v.Equal(s) {
		t.Fatal("copy not equal")
	}
	v.IntersectWith(NewBitSet(130))
	if v.Count() != 0 {
		t.Fatal("intersect with empty not empty")
	}
	w := NewBitSet(70)
	w.Fill(70)
	if w.Count() != 70 || w.Has(70) {
		t.Fatalf("fill: count=%d has(70)=%v", w.Count(), w.Has(70))
	}
}

func TestCFGDiamondAndDominators(t *testing.T) {
	c := BuildCFG(diamond())
	if got := c.Succs[0]; !reflect.DeepEqual(got, []int{1, 2}) {
		t.Fatalf("succs(b0) = %v", got)
	}
	if got := c.Preds[3]; len(got) != 2 {
		t.Fatalf("preds(b3) = %v", got)
	}
	if len(c.RPO) != 4 || c.RPO[0] != 0 || c.RPO[len(c.RPO)-1] != 3 {
		t.Fatalf("RPO = %v", c.RPO)
	}
	for b := 0; b < 4; b++ {
		if !c.Reachable(b) {
			t.Fatalf("b%d unreachable", b)
		}
	}
	idom := c.Dominators()
	if idom[1] != 0 || idom[2] != 0 || idom[3] != 0 {
		t.Fatalf("idom = %v", idom)
	}
	if !Dominates(idom, 0, 3) || Dominates(idom, 1, 3) || Dominates(idom, 2, 3) {
		t.Fatal("dominance broken on diamond")
	}
}

func TestUnreachableBlock(t *testing.T) {
	// b1 is orphaned: entry returns immediately.
	f := mkFunc(1,
		[]ir.Instr{konst(0, 1), ret(0)},
		[]ir.Instr{jmp(0)},
	)
	c := BuildCFG(f)
	if c.Reachable(1) {
		t.Fatal("orphan block reported reachable")
	}
	if idom := c.Dominators(); idom[1] != -1 {
		t.Fatalf("idom of unreachable = %d, want -1", idom[1])
	}
}

func TestWitnessPath(t *testing.T) {
	c := BuildCFG(diamond())
	p := c.WitnessPath(0, 3)
	if len(p) != 3 || p[0] != 0 || p[2] != 3 {
		t.Fatalf("path = %v, want 0->{1|2}->3", p)
	}
	if got := c.WitnessPath(2, 2); !reflect.DeepEqual(got, []int{2}) {
		t.Fatalf("self path = %v", got)
	}
	if got := c.WitnessPath(3, 0); got != nil {
		t.Fatalf("impossible path = %v, want nil", got)
	}
}

func TestLiveness(t *testing.T) {
	// b0: r0, r1 defined; b1 reads only r0 — r1 is dead across the edge.
	f := mkFunc(2,
		[]ir.Instr{konst(0, 1), konst(1, 2), jmp(1)},
		[]ir.Instr{ret(0)},
	)
	c := BuildCFG(f)
	_, liveOut := Liveness(c)
	if !liveOut[0].Has(0) || liveOut[0].Has(1) {
		t.Fatalf("liveOut(b0): r0=%v r1=%v, want true,false", liveOut[0].Has(0), liveOut[0].Has(1))
	}
	after := LiveAfter(c, liveOut, 0)
	if !after[0].Has(0) {
		t.Fatal("r0 must be live after its def")
	}
}

func TestMustDefined(t *testing.T) {
	f := diamond() // r1 defined only on the b1 arm
	c := BuildCFG(f)
	in := MustDefined(c)
	if !in[3].Has(0) {
		t.Fatal("r0 must-defined at b3")
	}
	if in[3].Has(1) {
		t.Fatal("r1 wrongly must-defined at b3 (only defined on one arm)")
	}
}

func TestReachingDefs(t *testing.T) {
	// Site in b0 reaches b1 (no kill) but not past a redefinition in b2.
	f := mkFunc(2,
		[]ir.Instr{konst(0, 1), jmp(1)},
		[]ir.Instr{konst(0, 2), jmp(2)}, // kills the b0 def of r0
		[]ir.Instr{ret(0)},
	)
	c := BuildCFG(f)
	sites := []DefSite{{Block: 0, Index: 0}}
	in := ReachingDefs(c, sites)
	if !in[1].Has(0) {
		t.Fatal("site should reach b1")
	}
	if in[2].Has(0) {
		t.Fatal("site should be killed by the b1 redefinition before b2")
	}
}

func TestDCERemovesDeadPure(t *testing.T) {
	// r1 is a dead const; r0 flows to the return. The dead def must go,
	// the live one must stay.
	f := mkFunc(2,
		[]ir.Instr{konst(0, 7), konst(1, 8), ret(0)},
	)
	if n := EliminateFunc(f); n != 1 {
		t.Fatalf("removed %d, want 1", n)
	}
	if got := f.Blocks[0].Instrs; len(got) != 2 || got[0].Op != ir.OpConst || got[0].Dst != 0 {
		t.Fatalf("block after DCE: %v", got)
	}
}

func TestDCEKeepsTrappingAndImpure(t *testing.T) {
	// A dead integer division must survive (traps on zero divisor must be
	// preserved so P and P' fault identically).
	div := instr(ir.OpBin)
	div.Sub, div.NumKind = ir.BinDiv, ir.KInt
	div.Dst, div.A, div.B = 2, 0, 1
	f := mkFunc(3,
		[]ir.Instr{konst(0, 7), konst(1, 0), div, ret(ir.NoReg)},
	)
	if n := EliminateFunc(f); n != 0 {
		t.Fatalf("removed %d, want 0 (int div may trap)", n)
	}
}

func TestDCECoalescesMoves(t *testing.T) {
	// t = a + b; v = move t  ==>  v = a + b
	f := mkFunc(4,
		[]ir.Instr{konst(0, 1), konst(1, 2), add(2, 0, 1), mov(3, 2), ret(3)},
	)
	if n := EliminateFunc(f); n != 1 {
		t.Fatalf("removed %d, want 1", n)
	}
	got := f.Blocks[0].Instrs
	if len(got) != 4 || got[2].Op != ir.OpBin || got[2].Dst != 3 {
		t.Fatalf("block after coalesce: %v", got)
	}
}

func TestDCERemovesSelfMove(t *testing.T) {
	f := mkFunc(1,
		[]ir.Instr{konst(0, 1), mov(0, 0), ret(0)},
	)
	if n := EliminateFunc(f); n != 1 {
		t.Fatalf("removed %d, want 1", n)
	}
}

func TestTightenBounds(t *testing.T) {
	fc := &lang.Class{Name: "PtFacade"}
	get := instr(ir.OpPoolGet)
	get.Dst, get.Cls, get.Imm = 0, fc, 0 // only slot 0 ever fetched
	f := mkFunc(1, []ir.Instr{get, ret(ir.NoReg)})
	f.RegTypes[0] = lang.ClassType("PtFacade")
	p := &ir.Program{
		FuncList: []*ir.Func{f},
		Bounds:   map[string]int{"Pt": 3, "Other": 2},
	}
	got := TightenBounds(p)
	if got["Pt"] != 1 {
		t.Fatalf("Pt bound = %d, want 1 (only slot 0 used)", got["Pt"])
	}
	if got["Other"] != 1 {
		t.Fatalf("Other bound = %d, want floor of 1 (no fetches)", got["Other"])
	}
}
