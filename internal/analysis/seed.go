package analysis

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/lang"
)

// SeedViolation mutates p in place to contain one known facade-safety
// violation, for golden-diagnostics tests and `facadec vet -seed`. Some
// violation classes (use-before-def, pool clobbering) cannot be written in
// conforming FJ source — the type checker and the transform's closure
// computation rule them out — so they are injected at the IR level, the
// same place a compiler bug would introduce them.
//
// Kinds: "use-before-def", "pool-clobber".
func SeedViolation(p *ir.Program, kind string) error {
	switch kind {
	case "use-before-def":
		return seedUseBeforeDef(p)
	case "pool-clobber":
		return seedPoolClobber(p)
	}
	return fmt.Errorf("analysis: unknown seed kind %q (want use-before-def or pool-clobber)", kind)
}

// seedTarget picks a deterministic non-synthetic function to corrupt,
// preferring the program entry point.
func seedTarget(p *ir.Program, want func(*ir.Func) bool) *ir.Func {
	for _, name := range []string{"MainFacade.main", "Main.main"} {
		if f := p.Funcs[name]; f != nil && want(f) {
			return f
		}
	}
	for _, f := range p.FuncList {
		if want(f) {
			return f
		}
	}
	return nil
}

func seedUseBeforeDef(p *ir.Program) error {
	f := seedTarget(p, func(f *ir.Func) bool { return len(f.Blocks) > 0 && len(f.Blocks[0].Instrs) > 0 })
	if f == nil {
		return fmt.Errorf("analysis: no function to seed")
	}
	src := ir.Reg(f.NumRegs)
	dst := ir.Reg(f.NumRegs + 1)
	f.NumRegs += 2
	f.RegTypes = append(f.RegTypes, lang.IntType, lang.IntType)
	blk := f.Blocks[0]
	in := ir.Instr{
		Op: ir.OpBin, Sub: ir.BinAdd, NumKind: ir.KInt,
		Dst: dst, A: src, B: src, C: ir.NoReg,
		Pos: firstPos(f),
	}
	blk.Instrs = append([]ir.Instr{in}, blk.Instrs...)
	return nil
}

func seedPoolClobber(p *ir.Program) error {
	f := seedTarget(p, func(f *ir.Func) bool { return findPoolGet(f) != nil })
	if f == nil {
		return fmt.Errorf("analysis: no OpPoolGet to seed (program not transformed?)")
	}
	loc := findPoolGet(f)
	blk := f.Blocks[loc.Block]
	orig := blk.Instrs[loc.Index]
	held := ir.Reg(f.NumRegs)
	sink := ir.Reg(f.NumRegs + 1)
	f.NumRegs += 2
	ft := lang.ClassType(orig.Cls.Name)
	f.RegTypes = append(f.RegTypes, ft, ft)
	// Duplicate the fetch just before the original and keep its result live
	// past it with a use before the terminator: the refetch at the original
	// site now clobbers the held facade.
	dup := orig
	dup.Dst = held
	if dup.Pos.Line == 0 {
		// Transform-synthesized PoolGets carry no source position; borrow the
		// function's first so the diagnostic still points into the file.
		dup.Pos = firstPos(f)
	}
	use := ir.Instr{Op: ir.OpMove, Dst: sink, A: held, B: ir.NoReg, C: ir.NoReg, Pos: dup.Pos}
	instrs := make([]ir.Instr, 0, len(blk.Instrs)+2)
	instrs = append(instrs, blk.Instrs[:loc.Index]...)
	instrs = append(instrs, dup)
	instrs = append(instrs, blk.Instrs[loc.Index:len(blk.Instrs)-1]...)
	instrs = append(instrs, use, blk.Instrs[len(blk.Instrs)-1])
	blk.Instrs = instrs
	return nil
}

func findPoolGet(f *ir.Func) *DefSite {
	for b, blk := range f.Blocks {
		for j := range blk.Instrs {
			if blk.Instrs[j].Op == ir.OpPoolGet {
				return &DefSite{Block: b, Index: j}
			}
		}
	}
	return nil
}

func firstPos(f *ir.Func) lang.Pos {
	for _, b := range f.Blocks {
		for j := range b.Instrs {
			if b.Instrs[j].Pos.Line > 0 {
				return b.Instrs[j].Pos
			}
		}
	}
	return lang.Pos{}
}
