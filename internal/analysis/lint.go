package analysis

import (
	"fmt"
	"strings"

	"repro/internal/ir"
	"repro/internal/lang"
)

// Finding is one facade-safety lint diagnostic.
type Finding struct {
	// Check names the lint: "use-before-def", "facade-leak", "pool-clobber".
	Check string
	// Func is the containing function ("Class.method").
	Func string
	// Pos is the source position of the offending instruction; zero for
	// synthesized code (conversion functions, facade constructors).
	Pos lang.Pos
	Msg string
	// Path is a witness path of block IDs for pool-clobber findings.
	Path []int
}

// String renders the finding as "file:line:col: [check] msg (in func)",
// falling back to the function name when no source position is known.
func (f Finding) String() string {
	var sb strings.Builder
	if f.Pos.Line > 0 {
		fmt.Fprintf(&sb, "%s: ", f.Pos)
	}
	fmt.Fprintf(&sb, "[%s] %s (in %s)", f.Check, f.Msg, f.Func)
	if len(f.Path) > 0 {
		sb.WriteString(" via ")
		for i, b := range f.Path {
			if i > 0 {
				sb.WriteString("->")
			}
			fmt.Fprintf(&sb, "b%d", b)
		}
	}
	return sb.String()
}

// LintProgram runs the facade-safety lints over every function:
// use-before-def on all programs, plus the facade-leak and pool-clobber
// checks on facade-context functions of transformed programs. Findings
// come back in deterministic (function, block, instruction) order.
func LintProgram(p *ir.Program) []Finding {
	facade := FacadeClasses(p)
	var out []Finding
	for _, f := range p.FuncList {
		out = append(out, LintFunc(p, f, facade)...)
	}
	return out
}

// LintFunc lints a single function. facade may be nil, in which case it is
// recomputed from p.
func LintFunc(p *ir.Program, f *ir.Func, facade map[string]bool) []Finding {
	if facade == nil {
		facade = FacadeClasses(p)
	}
	c := BuildCFG(f)
	liveIn, liveOut := Liveness(c)
	_ = liveIn
	var out []Finding
	out = append(out, lintUseBeforeDef(c)...)
	if p.Transformed && f.Class != nil && facade[f.Class.Name] {
		out = append(out, lintLeaks(p, c, liveOut, facade)...)
		out = append(out, lintPoolClobber(c, liveOut)...)
	}
	return out
}

// lintUseBeforeDef flags registers read on some path before any definition
// (parameters count as defined). Unreachable blocks are skipped.
func lintUseBeforeDef(c *CFG) []Finding {
	f := c.F
	mustIn := MustDefined(c)
	var out []Finding
	var ubuf []ir.Reg
	for b, blk := range f.Blocks {
		if !c.Reachable(b) {
			continue
		}
		defined := mustIn[b].Copy()
		for j := range blk.Instrs {
			in := &blk.Instrs[j]
			ubuf = Uses(in, ubuf[:0])
			for _, r := range ubuf {
				if !defined.Has(int(r)) {
					out = append(out, Finding{
						Check: "use-before-def", Func: f.Name, Pos: in.Pos,
						Msg: fmt.Sprintf("register r%d may be used before it is defined", r),
					})
					defined.Set(int(r)) // report each register once per block
				}
			}
			if d := Def(in); d != ir.NoReg {
				defined.Set(int(d))
			}
		}
	}
	return out
}

// --- facade-leak ----------------------------------------------------------

// leakState is the per-block abstract state of the leak analysis: the set
// of registers that may hold a raw page reference (taint), the subset
// whose record was provably allocated inside the current iteration
// (itaint), and the two-bit iteration region state.
type leakState struct {
	taint, itaint BitSet
	canIn, canOut bool
}

func newLeakState(n int) *leakState {
	return &leakState{taint: NewBitSet(n), itaint: NewBitSet(n)}
}

func (s *leakState) copyFrom(t *leakState) {
	s.taint.CopyFrom(t.taint)
	s.itaint.CopyFrom(t.itaint)
	s.canIn, s.canOut = t.canIn, t.canOut
}

func (s *leakState) mergeFrom(t *leakState) bool {
	changed := s.taint.UnionWith(t.taint)
	changed = s.itaint.UnionWith(t.itaint) || changed
	if t.canIn && !s.canIn {
		s.canIn = true
		changed = true
	}
	if t.canOut && !s.canOut {
		s.canOut = true
		changed = true
	}
	return changed
}

// taintGen reports whether in's destination receives a raw page reference.
func taintGen(p *ir.Program, in *ir.Instr) bool {
	switch in.Op {
	case ir.OpPNew, ir.OpPNewArr, ir.OpPCast:
		return true
	case ir.OpLoad:
		// Unwrapping a facade: Facade.pageRef holds the bound record.
		return in.Field != nil && in.Field.Name == "pageRef"
	case ir.OpPLoad:
		return in.Field != nil && classOfType(in.Field.Type) == cRef
	case ir.OpPALoad:
		return in.Type != nil && classOfType(in.Type) == cRef
	case ir.OpStrLit:
		// The transform retags data-path string literals as page records.
		return in.NumKind == ir.KLong
	case ir.OpCall, ir.OpCallStatic:
		return in.M != nil && isDataArrayType(p, in.M.Ret)
	}
	return false
}

// isDataArrayType reports whether t is an array whose elements are data
// objects — calls returning such arrays hand back raw page references
// (arrays have no facades).
func isDataArrayType(p *ir.Program, t *lang.Type) bool {
	if t == nil || t.Kind != lang.TArray {
		return false
	}
	e := t.Elem
	for e != nil && e.Kind == lang.TArray {
		e = e.Elem
	}
	return e != nil && e.Kind == lang.TClass && (p.DataClasses[e.Name] || e.Name == "Object")
}

// step applies one instruction to the leak state.
func (s *leakState) step(p *ir.Program, in *ir.Instr) {
	if in.Op == ir.OpIntr {
		switch in.Sym {
		case "iterStart":
			s.canIn, s.canOut = true, false
		case "iterEnd":
			s.canIn, s.canOut = false, true
		}
	}
	d := Def(in)
	if d == ir.NoReg {
		return
	}
	gen := taintGen(p, in)
	genIter := false
	switch in.Op {
	case ir.OpPNew, ir.OpPNewArr:
		// Allocations provably inside an iteration produce iteration-scoped
		// records (§2.2): the record is reclaimed at Sys.iterEnd.
		genIter = s.canIn && !s.canOut
	case ir.OpMove:
		gen = s.taint.Has(int(in.A))
		genIter = s.itaint.Has(int(in.A))
	case ir.OpPCast:
		genIter = s.itaint.Has(int(in.A))
	}
	if gen {
		s.taint.Set(int(d))
	} else {
		s.taint.Clear(int(d))
	}
	if genIter {
		s.itaint.Set(int(d))
	} else {
		s.itaint.Clear(int(d))
	}
}

// lintLeaks flags page references leaking out of the facade world: stores
// into control-heap fields/statics/arrays, raw references passed to
// control-path methods, and iteration-scoped records still live after
// Sys.iterEnd.
func lintLeaks(p *ir.Program, c *CFG, liveOut []BitSet, facade map[string]bool) []Finding {
	f := c.F
	n := len(f.Blocks)
	ins := make([]*leakState, n)
	outs := make([]*leakState, n)
	for i := 0; i < n; i++ {
		ins[i] = newLeakState(f.NumRegs)
		outs[i] = newLeakState(f.NumRegs)
	}
	// The entry is conservative: the function may be invoked either inside
	// or outside an iteration, so neither region is proven.
	ins[0].canIn, ins[0].canOut = true, true
	// Union meet: in-states only ever grow, so merging predecessor
	// out-states into the persistent in-state is monotone and converges.
	tmp := newLeakState(f.NumRegs)
	for changed := true; changed; {
		changed = false
		for _, b := range c.RPO {
			for _, pred := range c.Preds[b] {
				if c.Reachable(pred) {
					ins[b].mergeFrom(outs[pred])
				}
			}
			tmp.copyFrom(ins[b])
			for j := range f.Blocks[b].Instrs {
				tmp.step(p, &f.Blocks[b].Instrs[j])
			}
			if outs[b].mergeFrom(tmp) {
				changed = true
			}
		}
	}
	// Findings pass: replay each reachable block from its fixpoint in-state.
	var out []Finding
	st := newLeakState(f.NumRegs)
	for _, b := range c.RPO {
		st.copyFrom(ins[b])
		after := LiveAfter(c, liveOut, b)
		for j := range f.Blocks[b].Instrs {
			in := &f.Blocks[b].Instrs[j]
			switch in.Op {
			case ir.OpStore:
				if in.B != ir.NoReg && st.taint.Has(int(in.B)) && in.Field != nil && in.Field.Name != "pageRef" {
					out = append(out, Finding{
						Check: "facade-leak", Func: f.Name, Pos: in.Pos,
						Msg: fmt.Sprintf("page reference (r%d) stored into control-heap field %s.%s", in.B, ownerName(in.Field), in.Field.Name),
					})
				}
			case ir.OpStoreStatic:
				if in.A != ir.NoReg && st.taint.Has(int(in.A)) && in.Field != nil && (in.Field.Owner == nil || !facade[in.Field.Owner.Name]) {
					out = append(out, Finding{
						Check: "facade-leak", Func: f.Name, Pos: in.Pos,
						Msg: fmt.Sprintf("page reference (r%d) stored into static field %s.%s", in.A, ownerName(in.Field), in.Field.Name),
					})
				}
			case ir.OpAStore:
				if in.C != ir.NoReg && st.taint.Has(int(in.C)) {
					out = append(out, Finding{
						Check: "facade-leak", Func: f.Name, Pos: in.Pos,
						Msg: fmt.Sprintf("page reference (r%d) stored into a managed-heap array", in.C),
					})
				}
			case ir.OpCall, ir.OpCallStatic:
				if in.M != nil && in.M.Owner != nil && !facade[in.M.Owner.Name] {
					for _, a := range in.Args {
						if a != ir.NoReg && st.taint.Has(int(a)) {
							out = append(out, Finding{
								Check: "facade-leak", Func: f.Name, Pos: in.Pos,
								Msg: fmt.Sprintf("page reference (r%d) passed to control-path method %s.%s", a, in.M.Owner.Name, in.M.Name),
							})
						}
					}
				}
			case ir.OpIntr:
				if in.Sym == "iterEnd" {
					for r := 0; r < f.NumRegs; r++ {
						if st.itaint.Has(r) && after[j].Has(r) {
							out = append(out, Finding{
								Check: "facade-leak", Func: f.Name, Pos: in.Pos,
								Msg: fmt.Sprintf("page record in r%d, allocated inside the iteration, is still live after Sys.iterEnd (reclaimed storage escapes its iteration, §2.2)", r),
							})
						}
					}
				}
			}
			st.step(p, in)
		}
	}
	return out
}

func ownerName(fl *lang.Field) string {
	if fl.Owner == nil {
		return "?"
	}
	return fl.Owner.Name
}

// --- pool-clobber ---------------------------------------------------------

// lintPoolClobber proves that no pool facade is refetched while a previous
// fetch of the same (class, index) slot is still live: OpPoolGet rebinds
// the singleton facade at that slot, so the earlier register would see its
// record silently swapped. A witness path of block IDs accompanies each
// finding. (Fetches above the §3.3 bound are a verifier error, not a lint.)
func lintPoolClobber(c *CFG, liveOut []BitSet) []Finding {
	f := c.F
	var sites []DefSite
	slot := func(in *ir.Instr) string {
		return fmt.Sprintf("%s[%d]", in.Cls.Name, in.Imm)
	}
	siteAt := map[[2]int]int{}
	for b, blk := range f.Blocks {
		for j := range blk.Instrs {
			if blk.Instrs[j].Op == ir.OpPoolGet {
				siteAt[[2]int{b, j}] = len(sites)
				sites = append(sites, DefSite{Block: b, Index: j})
			}
		}
	}
	if len(sites) < 2 {
		return nil
	}
	reachIn := ReachingDefs(c, sites)
	sitesByReg := map[ir.Reg][]int{}
	for i, s := range sites {
		d := f.Blocks[s.Block].Instrs[s.Index].Dst
		sitesByReg[d] = append(sitesByReg[d], i)
	}
	var out []Finding
	for _, b := range c.RPO {
		reach := reachIn[b].Copy()
		after := LiveAfter(c, liveOut, b)
		for j := range f.Blocks[b].Instrs {
			in := &f.Blocks[b].Instrs[j]
			if in.Op == ir.OpPoolGet {
				for si := range sites {
					if !reach.Has(si) {
						continue
					}
					s1 := &f.Blocks[sites[si].Block].Instrs[sites[si].Index]
					if slot(s1) != slot(in) || s1.Dst == in.Dst {
						continue
					}
					if after[j].Has(int(s1.Dst)) {
						// PoolGets are transform-synthesized and usually carry
						// no source position; fall back to the earlier fetch's,
						// then to the function's first, so the diagnostic still
						// points into the file.
						pos := in.Pos
						if pos.Line == 0 {
							pos = s1.Pos
						}
						if pos.Line == 0 {
							pos = firstPos(f)
						}
						out = append(out, Finding{
							Check: "pool-clobber", Func: f.Name, Pos: pos,
							Msg: fmt.Sprintf("pool facade %s refetched into r%d while previous fetch r%d (b%d) is still live; rebinding clobbers it",
								slot(in), in.Dst, s1.Dst, sites[si].Block),
							Path: c.WitnessPath(sites[si].Block, b),
						})
					}
				}
			}
			if d := Def(in); d != ir.NoReg {
				for _, si := range sitesByReg[d] {
					reach.Clear(si)
				}
			}
			if si, ok := siteAt[[2]int{b, j}]; ok {
				reach.Set(si)
			}
		}
	}
	return out
}
