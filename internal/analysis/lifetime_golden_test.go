package analysis_test

// Golden tests for the lifetime pass (facadec vet -lifetimes) and the
// machine-readable vet report (facadec vet -json). lifetime.fj exercises
// every point of the lattice; the .want files pin the classification lines
// and the facade.vet/v1 JSON bytes exactly (regenerate with -update).

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/facade"
)

func checkGoldenText(t *testing.T, wantFile, got string) {
	t.Helper()
	wantPath := filepath.Join("testdata", wantFile)
	if *update {
		if err := os.WriteFile(wantPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(wantPath)
	if err != nil {
		t.Fatalf("%s (run with -update to regenerate)", err)
	}
	if got != string(want) {
		t.Errorf("%s mismatch.\ngot:\n%s\nwant:\n%s", wantFile, got, want)
	}
}

func TestGoldenLifetimes(t *testing.T) {
	r := vetFile(t, "lifetime.fj", facade.VetLifetimes())
	if !r.Clean() {
		t.Fatalf("lifetime.fj should vet clean: %v %v", r.VerifyErrs, r.Diagnostics)
	}
	if len(r.Lifetimes) == 0 {
		t.Fatal("expected lifetime classifications, got none")
	}
	checkGoldenText(t, "lifetime.want", strings.Join(r.Lifetimes, "\n")+"\n")

	// The counts must tally the report lines.
	counts := map[string]int{}
	for _, l := range r.Lifetimes {
		for _, class := range []string{"epoch-local", "long-lived", "unknown"} {
			if strings.Contains(l, ": "+class+" (") {
				counts[class]++
			}
		}
	}
	for class, n := range counts {
		if r.LifetimeCounts[class] != n {
			t.Errorf("LifetimeCounts[%q] = %d, want %d", class, r.LifetimeCounts[class], n)
		}
	}
	// Every lattice point must be exercised.
	for _, class := range []string{"epoch-local", "long-lived", "unknown"} {
		if counts[class] == 0 {
			t.Errorf("no %s site in lifetime.fj", class)
		}
	}

	// Spot-check the classifications the program was written to produce.
	wantSubstr := []string{
		"new Node: long-lived (escapes (stored into an array) outside any proven iteration",
		"new int[]: epoch-local (allocated inside an iteration, never escapes, dead before every boundary",
		"new Node: unknown (escapes (stored into an array) inside an iteration",
		"new Node[]: unknown (live across a possible iteration boundary",
	}
	joined := strings.Join(r.Lifetimes, "\n")
	for _, sub := range wantSubstr {
		if !strings.Contains(joined, sub) {
			t.Errorf("missing expected classification %q", sub)
		}
	}
}

func TestGoldenLifetimesOffByDefault(t *testing.T) {
	r := vetFile(t, "lifetime.fj")
	if r.Lifetimes != nil || r.LifetimeCounts != nil {
		t.Fatal("lifetime report produced without VetLifetimes()")
	}
}

// TestGoldenVetJSON byte-pins the facade.vet/v1 report: the encoding is
// deterministic (sorted keys, stable numbers), so CI can diff the output
// directly.
func TestGoldenVetJSON(t *testing.T) {
	r := vetFile(t, "lifetime.fj", facade.VetLifetimes())
	r.File = "lifetime.fj"
	var buf bytes.Buffer
	if err := r.JSON(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	checkGoldenText(t, "lifetime_json.want", got)
	for _, sub := range []string{
		`"schema": "facade.vet/v1"`,
		`"clean": true`,
		`"file": "lifetime.fj"`,
		`"lifetime_counts"`,
	} {
		if !strings.Contains(got, sub) {
			t.Errorf("JSON report missing %q", sub)
		}
	}
	// Byte-for-byte determinism across encodes.
	var buf2 bytes.Buffer
	if err := r.JSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("JSON report is not byte-stable across encodes")
	}
}
