package analysis

import "repro/internal/ir"

// Liveness-driven dead-code elimination. Lowering and the FACADE transform
// both emit instructions whose results are never read (pool fetches for
// discarded values, conversion temporaries, retype moves); removing them
// shrinks the interpreted instruction count, and removing dead OpPoolGets
// lets TightenBounds shrink the §3.3 pool bounds from max-over-signatures
// to max-over-live-ranges.
//
// Only trap-free instructions are candidates: loads, array ops, casts, and
// instanceof checks are kept even when dead so that P and P' still fault
// on exactly the same programs.

// pure reports whether in has no side effect and cannot trap, i.e. it is
// removable when its destination is dead.
func pure(in *ir.Instr) bool {
	switch in.Op {
	case ir.OpConst, ir.OpStrLit, ir.OpMove, ir.OpUn, ir.OpConv, ir.OpPoolGet:
		return true
	case ir.OpBin:
		if in.Sub == ir.BinDiv || in.Sub == ir.BinRem {
			// Integer division traps on zero; double division does not.
			return in.NumKind == ir.KDouble
		}
		return true
	}
	return false
}

// regClassOf mirrors the verifier's machine classes for the coalescing
// safety gate: moves are only folded between registers of the same class
// so that GC root scanning (which walks ref-typed registers) is unchanged.
func regClassOf(f *ir.Func, r ir.Reg) kclass {
	if r == ir.NoReg || int(r) >= len(f.RegTypes) {
		return cAny
	}
	return classOfType(f.RegTypes[r])
}

// Eliminate removes dead pure instructions and folds single-use retype
// moves across the whole program, returning the number of instructions
// removed. The count is also recorded in p.DCERemoved.
func Eliminate(p *ir.Program) int {
	total := 0
	for _, f := range p.FuncList {
		total += EliminateFunc(f)
	}
	p.DCERemoved += total
	return total
}

// EliminateFunc runs the DCE fixpoint on one function and returns the
// number of instructions removed.
func EliminateFunc(f *ir.Func) int {
	removed := 0
	c := BuildCFG(f) // CFG shape never changes: terminators are not pure
	for {
		n := deadPass(c)
		n += coalescePass(c)
		if n == 0 {
			return removed
		}
		removed += n
	}
}

// deadPass removes pure instructions whose destination is dead, plus
// self-moves, in one liveness round. Returns the number removed.
func deadPass(c *CFG) int {
	f := c.F
	_, liveOut := Liveness(c)
	removed := 0
	for b, blk := range f.Blocks {
		live := liveOut[b].Copy()
		dead := make([]bool, len(blk.Instrs))
		for j := len(blk.Instrs) - 1; j >= 0; j-- {
			in := &blk.Instrs[j]
			if in.Op == ir.OpMove && in.Dst == in.A {
				dead[j] = true
				continue // a self-move neither defines nor uses anew
			}
			if pure(in) && in.Dst != ir.NoReg && !live.Has(int(in.Dst)) {
				dead[j] = true
				continue // skip StepBack: its uses stay dead
			}
			StepBack(live, in)
		}
		kept := blk.Instrs[:0]
		for j := range blk.Instrs {
			if dead[j] {
				removed++
			} else {
				kept = append(kept, blk.Instrs[j])
			}
		}
		blk.Instrs = kept
	}
	return removed
}

// coalescePass folds the pattern
//
//	t = <pure-or-call producer> ; v = move t   (t dead after the move)
//
// into a single instruction writing v directly, when t and v share a
// machine register class. One fold per block per round keeps the liveness
// information it relies on valid. Returns the number of moves removed.
func coalescePass(c *CFG) int {
	f := c.F
	_, liveOut := Liveness(c)
	removed := 0
	for b, blk := range f.Blocks {
		after := LiveAfter(c, liveOut, b)
		for j := 0; j+1 < len(blk.Instrs); j++ {
			prod := &blk.Instrs[j]
			mv := &blk.Instrs[j+1]
			if mv.Op != ir.OpMove || prod.Dst == ir.NoReg || prod.Dst != mv.A || mv.Dst == mv.A {
				continue
			}
			if prod.Op == ir.OpJump || prod.Op == ir.OpBranch || prod.Op == ir.OpRet {
				continue
			}
			if after[j+1].Has(int(prod.Dst)) {
				continue // t still read somewhere after the move
			}
			if regClassOf(f, prod.Dst) != regClassOf(f, mv.Dst) {
				continue
			}
			// Operands are read before the destination is written, so
			// rewriting the producer's Dst is safe even if it reads mv.Dst.
			prod.Dst = mv.Dst
			blk.Instrs = append(blk.Instrs[:j+1], blk.Instrs[j+2:]...)
			removed++
			break
		}
	}
	return removed
}

// TightenBounds shrinks the §3.3 pool bounds of a transformed program to
// the highest pool index actually fetched after DCE, per pool (never below
// one slot). Opt-in: programs entered through the Go boundary
// (vm.bindParamFacade) still size pools by signature, so only pure-FJ
// programs should tighten. Returns the tightened bounds map.
func TightenBounds(p *ir.Program) map[string]int {
	if p.Bounds == nil {
		return nil
	}
	maxIdx := map[string]int{}
	for _, f := range p.FuncList {
		for _, b := range f.Blocks {
			for j := range b.Instrs {
				in := &b.Instrs[j]
				if in.Op != ir.OpPoolGet || in.Cls == nil {
					continue
				}
				orig := origPoolName(in.Cls.Name)
				if n := int(in.Imm) + 1; n > maxIdx[orig] {
					maxIdx[orig] = n
				}
			}
		}
	}
	for orig, bound := range p.Bounds {
		need := maxIdx[orig]
		if need < 1 {
			need = 1
		}
		if need < bound {
			p.Bounds[orig] = need
		}
	}
	return p.Bounds
}
