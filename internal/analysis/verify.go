package analysis

import (
	"fmt"
	"strings"

	"repro/internal/ir"
	"repro/internal/lang"
)

// The verifier checks every function against the IR's typing discipline:
// register kinds vs. instruction operands, terminator placement, field
// offsets inside the owner's record body, static indices in range, and
// page-half opcodes appearing only in transformed facade-context code.
//
// Register kinds are compared by machine class (int-like, long, double,
// ref). Two deliberate leniencies mirror how the compiler emits code:
//
//   - OpMove is kind-unchecked: it is the IR's official retype/blit
//     instruction (the transform and the bridge use it to move raw page
//     references and record payloads between long- and ref-typed
//     registers).
//   - Inside facade-context functions of a transformed program (the Facade
//     base class, FacadeBridge, and every data-class facade twin) the long
//     and ref classes are merged: data-typed registers are retyped to long
//     by the transform, but call signatures and field types still name the
//     original reference types.

// kclass is a machine register class.
type kclass uint8

const (
	cAny kclass = iota // untyped register (no RegTypes entry)
	cInt               // int, byte, bool
	cLong
	cDouble
	cRef
)

func (k kclass) String() string {
	switch k {
	case cInt:
		return "int"
	case cLong:
		return "long"
	case cDouble:
		return "double"
	case cRef:
		return "ref"
	}
	return "any"
}

func classOfKind(k ir.NumKind) kclass {
	switch k {
	case ir.KInt, ir.KByte, ir.KBool:
		return cInt
	case ir.KLong:
		return cLong
	case ir.KDouble:
		return cDouble
	}
	return cRef
}

func classOfType(t *lang.Type) kclass {
	if t == nil {
		return cAny
	}
	return classOfKind(ir.KindOf(t))
}

// FacadeClasses returns the set of class names whose methods run in
// facade context in a transformed program: the Facade base class, the
// FacadeBridge conversion owner, and one facade twin per data class.
func FacadeClasses(p *ir.Program) map[string]bool {
	set := map[string]bool{"Facade": true, "FacadeBridge": true}
	for name := range p.DataClasses {
		set[facadeName(name)] = true
	}
	return set
}

// facadeName mirrors core.FacadeName without importing internal/core.
func facadeName(orig string) string {
	if orig == "Object" {
		return "Facade"
	}
	return orig + "Facade"
}

// origPoolName maps a facade class name back to the §3.3 pool key (the
// original class name; the shared base pool is keyed "Object").
func origPoolName(facadeCls string) string {
	if facadeCls == "Facade" {
		return "Object"
	}
	return strings.TrimSuffix(facadeCls, "Facade")
}

type verifier struct {
	p      *ir.Program
	f      *ir.Func
	facade map[string]bool
	// merged is true when long and ref register classes are interchangeable
	// (facade-context functions of a transformed program).
	merged bool
}

// VerifyProgram type-checks every function. It returns the first
// violation, or nil when the whole program verifies.
func VerifyProgram(p *ir.Program) error {
	if err := p.Verify(); err != nil {
		return err
	}
	facade := FacadeClasses(p)
	for _, f := range p.FuncList {
		if err := verifyFunc(p, f, facade); err != nil {
			return err
		}
	}
	return nil
}

// VerifyFunc type-checks a single function of p.
func VerifyFunc(p *ir.Program, f *ir.Func) error {
	if err := f.Verify(); err != nil {
		return err
	}
	return verifyFunc(p, f, FacadeClasses(p))
}

func verifyFunc(p *ir.Program, f *ir.Func, facade map[string]bool) error {
	v := &verifier{p: p, f: f, facade: facade}
	v.merged = p.Transformed && f.Class != nil && facade[f.Class.Name]
	for _, b := range f.Blocks {
		for j := range b.Instrs {
			if err := v.instr(&b.Instrs[j]); err != nil {
				return fmt.Errorf("%s: b%d#%d: %s: %w", f.Name, b.ID, j, b.Instrs[j].String(), err)
			}
		}
	}
	return nil
}

func (v *verifier) regClass(r ir.Reg) kclass {
	if r == ir.NoReg || int(r) >= len(v.f.RegTypes) {
		return cAny
	}
	return classOfType(v.f.RegTypes[r])
}

func (v *verifier) compat(have, want kclass) bool {
	if have == cAny || want == cAny || have == want {
		return true
	}
	if v.merged && (have == cLong || have == cRef) && (want == cLong || want == cRef) {
		return true
	}
	return false
}

func (v *verifier) want(r ir.Reg, want kclass, what string) error {
	if r == ir.NoReg {
		return fmt.Errorf("%s: missing register", what)
	}
	if have := v.regClass(r); !v.compat(have, want) {
		return fmt.Errorf("%s: r%d is %s, want %s", what, r, have, want)
	}
	return nil
}

func (v *verifier) fieldOK(fl *lang.Field, static bool) error {
	if fl == nil {
		return fmt.Errorf("nil field")
	}
	if fl.Static != static {
		if static {
			return fmt.Errorf("field %s is not static", fl.Name)
		}
		return fmt.Errorf("field %s is static", fl.Name)
	}
	if static {
		if fl.StaticIndex < 0 || fl.StaticIndex >= v.p.H.NumStatics {
			return fmt.Errorf("static index %d out of range [0,%d)", fl.StaticIndex, v.p.H.NumStatics)
		}
		return nil
	}
	if fl.Owner != nil && fl.Owner.BodySize > 0 {
		if fl.Offset < 0 || fl.Offset+fl.Type.FieldSize() > fl.Owner.BodySize {
			return fmt.Errorf("field %s.%s offset %d size %d exceeds body size %d",
				fl.Owner.Name, fl.Name, fl.Offset, fl.Type.FieldSize(), fl.Owner.BodySize)
		}
	}
	return nil
}

// recvOK checks a heap field access receiver: when both the register's
// class and the field's owner resolve, one must be a subclass of the
// other. (The bridge legally loads concrete-class fields off Object-typed
// registers, so the relation is accepted in either direction.)
func (v *verifier) recvOK(r ir.Reg, fl *lang.Field) error {
	if r == ir.NoReg || int(r) >= len(v.f.RegTypes) || fl.Owner == nil {
		return nil
	}
	t := v.f.RegTypes[r]
	if t == nil || t.Kind != lang.TClass {
		return nil
	}
	rc := v.p.H.Class(t.Name)
	if rc == nil {
		return nil
	}
	if !rc.IsSubclassOf(fl.Owner) && !fl.Owner.IsSubclassOf(rc) {
		return fmt.Errorf("receiver class %s unrelated to field owner %s", rc.Name, fl.Owner.Name)
	}
	return nil
}

func isPageOp(op ir.Op) bool { return op >= ir.OpPNew && op <= ir.OpPMonExit }

func (v *verifier) instr(in *ir.Instr) error {
	if isPageOp(in.Op) {
		if !v.p.Transformed {
			return fmt.Errorf("page-half op in untransformed program")
		}
		if v.f.Class == nil || !v.facade[v.f.Class.Name] {
			return fmt.Errorf("page-half op outside facade-context function")
		}
	}
	switch in.Op {
	case ir.OpNop, ir.OpJump:
		return nil
	case ir.OpConst:
		if classOfKind(in.NumKind) == cRef && in.Imm != 0 {
			return fmt.Errorf("ref const must be null (Imm=0), got %d", in.Imm)
		}
		return v.want(in.Dst, classOfKind(in.NumKind), "dst")
	case ir.OpStrLit:
		if in.Imm < 0 || int(in.Imm) >= len(v.p.StringPool) {
			return fmt.Errorf("string pool index %d out of range [0,%d)", in.Imm, len(v.p.StringPool))
		}
		// Lowering leaves NumKind zero (a heap String ref); the transform
		// retags data-path literals KLong (an interned page record).
		want := cRef
		if in.NumKind == ir.KLong {
			want = cLong
		}
		return v.want(in.Dst, want, "dst")
	case ir.OpMove:
		// Kind-unchecked: the IR's retype/blit instruction.
		if in.A == ir.NoReg || in.Dst == ir.NoReg {
			return fmt.Errorf("move needs src and dst")
		}
		return nil
	case ir.OpBin:
		k := classOfKind(in.NumKind)
		if k == cRef && in.Sub != ir.BinEq && in.Sub != ir.BinNe {
			return fmt.Errorf("ref bin only supports == and !=, got %s", in.Sub)
		}
		if k == cDouble {
			switch in.Sub {
			case ir.BinRem, ir.BinAnd, ir.BinOr, ir.BinXor, ir.BinShl, ir.BinShr:
				return fmt.Errorf("double bin does not support %s", in.Sub)
			}
		}
		if err := v.want(in.A, k, "lhs"); err != nil {
			return err
		}
		if err := v.want(in.B, k, "rhs"); err != nil {
			return err
		}
		dk := k
		switch in.Sub {
		case ir.BinLt, ir.BinLe, ir.BinGt, ir.BinGe, ir.BinEq, ir.BinNe:
			dk = cInt
		}
		return v.want(in.Dst, dk, "dst")
	case ir.OpUn:
		if in.Sub != ir.UnNeg && in.Sub != ir.UnNot {
			return fmt.Errorf("bad unary sub-op %s", in.Sub)
		}
		k := classOfKind(in.NumKind)
		if err := v.want(in.A, k, "src"); err != nil {
			return err
		}
		return v.want(in.Dst, k, "dst")
	case ir.OpConv:
		if err := v.want(in.A, classOfKind(in.NumKind), "src"); err != nil {
			return err
		}
		return v.want(in.Dst, classOfKind(in.NumKind2), "dst")
	case ir.OpNew:
		if in.Cls == nil {
			return fmt.Errorf("new without class")
		}
		return v.want(in.Dst, cRef, "dst")
	case ir.OpNewArr:
		if in.Type == nil {
			return fmt.Errorf("newarr without element type")
		}
		if err := v.want(in.A, cInt, "length"); err != nil {
			return err
		}
		return v.want(in.Dst, cRef, "dst")
	case ir.OpLoad:
		if err := v.fieldOK(in.Field, false); err != nil {
			return err
		}
		if err := v.want(in.A, cRef, "receiver"); err != nil {
			return err
		}
		if err := v.recvOK(in.A, in.Field); err != nil {
			return err
		}
		return v.want(in.Dst, classOfType(in.Field.Type), "dst")
	case ir.OpStore:
		if err := v.fieldOK(in.Field, false); err != nil {
			return err
		}
		if err := v.want(in.A, cRef, "receiver"); err != nil {
			return err
		}
		if err := v.recvOK(in.A, in.Field); err != nil {
			return err
		}
		return v.want(in.B, classOfType(in.Field.Type), "value")
	case ir.OpLoadStatic:
		if err := v.fieldOK(in.Field, true); err != nil {
			return err
		}
		return v.want(in.Dst, classOfType(in.Field.Type), "dst")
	case ir.OpStoreStatic:
		if err := v.fieldOK(in.Field, true); err != nil {
			return err
		}
		return v.want(in.A, classOfType(in.Field.Type), "value")
	case ir.OpALoad:
		if in.Type == nil {
			return fmt.Errorf("aload without element type")
		}
		if err := v.want(in.A, cRef, "array"); err != nil {
			return err
		}
		if err := v.want(in.B, cInt, "index"); err != nil {
			return err
		}
		return v.want(in.Dst, classOfType(in.Type), "dst")
	case ir.OpAStore:
		if in.Type == nil {
			return fmt.Errorf("astore without element type")
		}
		if err := v.want(in.A, cRef, "array"); err != nil {
			return err
		}
		if err := v.want(in.B, cInt, "index"); err != nil {
			return err
		}
		return v.want(in.C, classOfType(in.Type), "value")
	case ir.OpALen:
		if err := v.want(in.A, cRef, "array"); err != nil {
			return err
		}
		return v.want(in.Dst, cInt, "dst")
	case ir.OpInstOf:
		if in.Type == nil {
			return fmt.Errorf("instof without type")
		}
		if err := v.want(in.A, cRef, "src"); err != nil {
			return err
		}
		return v.want(in.Dst, cInt, "dst")
	case ir.OpCast:
		if in.Type == nil {
			return fmt.Errorf("cast without type")
		}
		if err := v.want(in.A, cRef, "src"); err != nil {
			return err
		}
		return v.want(in.Dst, cRef, "dst")
	case ir.OpCall:
		if in.M == nil {
			return fmt.Errorf("call without method")
		}
		if in.A == ir.NoReg {
			return fmt.Errorf("virtual call without receiver")
		}
		if err := v.want(in.A, cRef, "receiver"); err != nil {
			return err
		}
		return v.callArgs(in)
	case ir.OpCallStatic:
		if in.M == nil {
			return fmt.Errorf("callstatic without method")
		}
		if in.A != ir.NoReg {
			if !in.M.IsCtor {
				return fmt.Errorf("callstatic with receiver but %s is not a constructor", in.M.Name)
			}
			if err := v.want(in.A, cRef, "receiver"); err != nil {
				return err
			}
		}
		return v.callArgs(in)
	case ir.OpRet:
		if in.A == ir.NoReg {
			// Bare return: also emitted by fall-off trap paths in
			// value-returning functions, so always legal.
			return nil
		}
		if v.f.Method == nil || v.f.Method.Ret == nil {
			return nil
		}
		rt := v.f.Method.Ret
		if rt.Kind == lang.TVoid {
			return fmt.Errorf("value return from void function")
		}
		return v.want(in.A, classOfType(rt), "return value")
	case ir.OpBranch:
		return v.want(in.A, cInt, "condition")
	case ir.OpIntr:
		// Intrinsic signatures are checked by the front end; registers are
		// validated structurally by ir.Func.Verify.
		return nil
	case ir.OpMonEnter, ir.OpMonExit:
		return v.want(in.A, cRef, "monitor")
	case ir.OpPNew:
		if in.Cls == nil {
			return fmt.Errorf("pnew without class")
		}
		return v.want(in.Dst, cLong, "dst")
	case ir.OpPNewArr:
		if in.Type == nil {
			return fmt.Errorf("pnewarr without element type")
		}
		if err := v.want(in.A, cInt, "length"); err != nil {
			return err
		}
		return v.want(in.Dst, cLong, "dst")
	case ir.OpPLoad:
		if err := v.fieldOK(in.Field, false); err != nil {
			return err
		}
		if err := v.want(in.A, cLong, "record"); err != nil {
			return err
		}
		return v.want(in.Dst, classOfType(in.Field.Type), "dst")
	case ir.OpPStore:
		if err := v.fieldOK(in.Field, false); err != nil {
			return err
		}
		if err := v.want(in.A, cLong, "record"); err != nil {
			return err
		}
		return v.want(in.B, classOfType(in.Field.Type), "value")
	case ir.OpPALoad:
		if in.Type == nil {
			return fmt.Errorf("paload without element type")
		}
		if err := v.want(in.A, cLong, "record"); err != nil {
			return err
		}
		if err := v.want(in.B, cInt, "index"); err != nil {
			return err
		}
		// The bridge reads record payloads into long-typed registers and
		// retypes with a Move, so accept the element class or a raw long.
		if v.compat(v.regClass(in.Dst), classOfType(in.Type)) || v.compat(v.regClass(in.Dst), cLong) {
			return nil
		}
		return fmt.Errorf("dst: r%d is %s, want %s or long", in.Dst, v.regClass(in.Dst), classOfType(in.Type))
	case ir.OpPAStore:
		if in.Type == nil {
			return fmt.Errorf("pastore without element type")
		}
		if err := v.want(in.A, cLong, "record"); err != nil {
			return err
		}
		if err := v.want(in.B, cInt, "index"); err != nil {
			return err
		}
		if v.compat(v.regClass(in.C), classOfType(in.Type)) || v.compat(v.regClass(in.C), cLong) {
			return nil
		}
		return fmt.Errorf("value: r%d is %s, want %s or long", in.C, v.regClass(in.C), classOfType(in.Type))
	case ir.OpPALen:
		if err := v.want(in.A, cLong, "record"); err != nil {
			return err
		}
		return v.want(in.Dst, cInt, "dst")
	case ir.OpPInstOf:
		if in.Cls == nil && in.Type == nil {
			return fmt.Errorf("pinstof without class or array type")
		}
		if err := v.want(in.A, cLong, "record"); err != nil {
			return err
		}
		return v.want(in.Dst, cInt, "dst")
	case ir.OpPCast:
		if in.Cls == nil && in.Type == nil {
			return fmt.Errorf("pcast without class or array type")
		}
		if err := v.want(in.A, cLong, "record"); err != nil {
			return err
		}
		return v.want(in.Dst, cLong, "dst")
	case ir.OpResolve:
		if err := v.want(in.A, cLong, "record"); err != nil {
			return err
		}
		return v.want(in.Dst, cRef, "dst")
	case ir.OpPoolGet:
		if in.Cls == nil {
			return fmt.Errorf("poolget without class")
		}
		if in.Imm < 0 {
			return fmt.Errorf("negative pool index %d", in.Imm)
		}
		if v.p.Bounds != nil {
			if bound, ok := v.p.Bounds[origPoolName(in.Cls.Name)]; ok && in.Imm >= int64(bound) {
				return fmt.Errorf("pool index %d exceeds §3.3 bound %d for %s", in.Imm, bound, in.Cls.Name)
			}
		}
		return v.want(in.Dst, cRef, "dst")
	case ir.OpRecvPool:
		if in.Cls == nil {
			return fmt.Errorf("recvpool without class")
		}
		if err := v.want(in.A, cLong, "record"); err != nil {
			return err
		}
		return v.want(in.Dst, cRef, "dst")
	case ir.OpPMonEnter, ir.OpPMonExit:
		return v.want(in.A, cLong, "monitor")
	}
	return fmt.Errorf("unknown opcode %d", in.Op)
}

func (v *verifier) callArgs(in *ir.Instr) error {
	m := in.M
	if len(in.Args) != len(m.Params) {
		return fmt.Errorf("%s: %d args, want %d", m.Name, len(in.Args), len(m.Params))
	}
	for i, a := range in.Args {
		if a == ir.NoReg {
			return fmt.Errorf("%s: arg %d missing", m.Name, i)
		}
		if have, want := v.regClass(a), classOfType(m.Params[i]); !v.compat(have, want) {
			return fmt.Errorf("%s: arg %d: r%d is %s, want %s", m.Name, i, a, have, want)
		}
	}
	if in.Dst != ir.NoReg && m.Ret != nil && m.Ret.Kind != lang.TVoid {
		if have, want := v.regClass(in.Dst), classOfType(m.Ret); !v.compat(have, want) {
			return fmt.Errorf("%s: result: r%d is %s, want %s", m.Name, in.Dst, have, want)
		}
	}
	return nil
}
