// Package analysis provides static analyses over the FACADE IR: CFG
// utilities (predecessors/successors, reverse postorder, dominators), a
// generic worklist dataflow solver with liveness / reaching-definitions /
// must-defined instances, an IR verifier, a facade-safety linter, and a
// liveness-driven dead-code eliminator.
//
// The package depends only on internal/ir and internal/lang so that every
// layer above the IR (internal/core, facade, cmd/facadec, tests) can use it
// without import cycles.
package analysis

import "repro/internal/ir"

// CFG is the control-flow graph of one function. Block IDs equal their
// index in F.Blocks (enforced by ir.Func.Verify), so edges are plain ints.
type CFG struct {
	F     *ir.Func
	Succs [][]int
	Preds [][]int
	// RPO is a reverse postorder of the blocks reachable from the entry
	// block 0. Unreachable blocks (lowering emits a few, e.g. after a
	// return inside a loop) are absent from RPO.
	RPO []int
	// rpoIndex[b] is b's position in RPO, or -1 for unreachable blocks.
	rpoIndex []int
}

// BuildCFG computes successor and predecessor edges and a reverse
// postorder for f. It assumes f passes ir.Func.Verify (every block ends in
// a terminator with in-range targets).
func BuildCFG(f *ir.Func) *CFG {
	n := len(f.Blocks)
	c := &CFG{
		F:        f,
		Succs:    make([][]int, n),
		Preds:    make([][]int, n),
		rpoIndex: make([]int, n),
	}
	for i, b := range f.Blocks {
		if len(b.Instrs) == 0 {
			continue
		}
		t := &b.Instrs[len(b.Instrs)-1]
		switch t.Op {
		case ir.OpJump:
			c.Succs[i] = []int{t.Blk}
		case ir.OpBranch:
			if t.Blk == t.Blk2 {
				c.Succs[i] = []int{t.Blk}
			} else {
				c.Succs[i] = []int{t.Blk, t.Blk2}
			}
		}
	}
	for from, ss := range c.Succs {
		for _, to := range ss {
			c.Preds[to] = append(c.Preds[to], from)
		}
	}
	// Iterative postorder DFS from the entry block, then reverse.
	seen := make([]bool, n)
	post := make([]int, 0, n)
	type frame struct{ blk, next int }
	stack := []frame{{0, 0}}
	seen[0] = true
	for len(stack) > 0 {
		fr := &stack[len(stack)-1]
		if fr.next < len(c.Succs[fr.blk]) {
			s := c.Succs[fr.blk][fr.next]
			fr.next++
			if !seen[s] {
				seen[s] = true
				stack = append(stack, frame{s, 0})
			}
			continue
		}
		post = append(post, fr.blk)
		stack = stack[:len(stack)-1]
	}
	c.RPO = make([]int, len(post))
	for i := range post {
		c.RPO[i] = post[len(post)-1-i]
	}
	for i := range c.rpoIndex {
		c.rpoIndex[i] = -1
	}
	for i, b := range c.RPO {
		c.rpoIndex[b] = i
	}
	return c
}

// Reachable reports whether block b is reachable from the entry block.
func (c *CFG) Reachable(b int) bool { return c.rpoIndex[b] >= 0 }

// Dominators computes the immediate-dominator array using the iterative
// algorithm of Cooper, Harvey, and Kennedy over the reverse postorder.
// idom[0] == 0; unreachable blocks get idom -1.
func (c *CFG) Dominators() []int {
	n := len(c.F.Blocks)
	idom := make([]int, n)
	for i := range idom {
		idom[i] = -1
	}
	idom[0] = 0
	intersect := func(a, b int) int {
		for a != b {
			for c.rpoIndex[a] > c.rpoIndex[b] {
				a = idom[a]
			}
			for c.rpoIndex[b] > c.rpoIndex[a] {
				b = idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, b := range c.RPO {
			if b == 0 {
				continue
			}
			newIdom := -1
			for _, p := range c.Preds[b] {
				if idom[p] == -1 {
					continue
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom != -1 && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// Dominates reports whether block a dominates block b given an idom array
// from Dominators.
func Dominates(idom []int, a, b int) bool {
	if a == 0 {
		return idom[b] != -1 || b == 0
	}
	for b != 0 && idom[b] != -1 {
		if b == a {
			return true
		}
		if b == idom[b] {
			break
		}
		b = idom[b]
	}
	return b == a
}

// WitnessPath returns a shortest path of block IDs from block `from` to
// block `to` following CFG edges, or nil if `to` is unreachable from
// `from`. Used by the pool-clobber lint to report the offending path.
func (c *CFG) WitnessPath(from, to int) []int {
	if from == to {
		return []int{from}
	}
	prev := make([]int, len(c.F.Blocks))
	for i := range prev {
		prev[i] = -1
	}
	queue := []int{from}
	prev[from] = from
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		for _, s := range c.Succs[b] {
			if prev[s] != -1 {
				continue
			}
			prev[s] = b
			if s == to {
				var path []int
				for x := to; ; x = prev[x] {
					path = append(path, x)
					if x == from {
						break
					}
				}
				for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
					path[i], path[j] = path[j], path[i]
				}
				return path
			}
			queue = append(queue, s)
		}
	}
	return nil
}
