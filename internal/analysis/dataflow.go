package analysis

import "repro/internal/ir"

// BitSet is a fixed-capacity bit vector used as the dataflow lattice
// element (sets of registers or of definition sites).
type BitSet []uint64

// NewBitSet returns an empty set with capacity for n bits.
func NewBitSet(n int) BitSet { return make(BitSet, (n+63)/64) }

// Set adds bit i.
func (s BitSet) Set(i int) { s[i/64] |= 1 << (uint(i) % 64) }

// Clear removes bit i.
func (s BitSet) Clear(i int) { s[i/64] &^= 1 << (uint(i) % 64) }

// Has reports whether bit i is present.
func (s BitSet) Has(i int) bool { return s[i/64]&(1<<(uint(i)%64)) != 0 }

// Copy returns an independent copy of s.
func (s BitSet) Copy() BitSet {
	t := make(BitSet, len(s))
	copy(t, s)
	return t
}

// CopyFrom overwrites s with t (same capacity).
func (s BitSet) CopyFrom(t BitSet) { copy(s, t) }

// UnionWith folds t into s and reports whether s changed. A shorter t is
// treated as zero-extended; bits of t beyond s's capacity are ignored.
func (s BitSet) UnionWith(t BitSet) bool {
	if len(t) > len(s) {
		t = t[:len(s)]
	}
	changed := false
	for i := range t {
		n := s[i] | t[i]
		if n != s[i] {
			s[i] = n
			changed = true
		}
	}
	return changed
}

// IntersectWith intersects s with t and reports whether s changed. A
// shorter t is treated as zero-extended, so words of s past t's length are
// cleared.
func (s BitSet) IntersectWith(t BitSet) bool {
	changed := false
	for i := range s {
		var tw uint64
		if i < len(t) {
			tw = t[i]
		}
		n := s[i] & tw
		if n != s[i] {
			s[i] = n
			changed = true
		}
	}
	return changed
}

// Fill sets the first n bits (the universal set for capacity n).
func (s BitSet) Fill(n int) {
	full := n / 64
	for i := 0; i < full; i++ {
		s[i] = ^uint64(0)
	}
	if rem := uint(n % 64); rem != 0 {
		s[full] |= (1 << rem) - 1
	}
}

// Equal reports set equality. Capacities may differ: a bit present in the
// longer set's tail makes the sets unequal, so Equal compares sets, not
// representations.
func (s BitSet) Equal(t BitSet) bool {
	if len(s) > len(t) {
		s, t = t, s
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	for _, w := range t[len(s):] {
		if w != 0 {
			return false
		}
	}
	return true
}

// Count returns the number of set bits.
func (s BitSet) Count() int {
	n := 0
	for i := range s {
		w := s[i]
		for w != 0 {
			w &= w - 1
			n++
		}
	}
	return n
}

// Uses appends the registers read by in to buf and returns it. The IR
// reads uniformly from A, B, C, and Args; NoReg slots are skipped.
// OpCall's Imm is VM link state (selector id), never a register.
func Uses(in *ir.Instr, buf []ir.Reg) []ir.Reg {
	for _, r := range []ir.Reg{in.A, in.B, in.C} {
		if r != ir.NoReg {
			buf = append(buf, r)
		}
	}
	for _, r := range in.Args {
		if r != ir.NoReg {
			buf = append(buf, r)
		}
	}
	return buf
}

// Def returns the register defined by in, or NoReg.
func Def(in *ir.Instr) ir.Reg { return in.Dst }

// Direction selects how a dataflow problem propagates facts.
type Direction int

// Dataflow directions.
const (
	Forward Direction = iota
	Backward
)

// Problem describes a gen/kill bit-vector dataflow problem over a CFG.
// Transfer per block is out = Gen ∪ (in − Kill) (forward) or the mirror
// image (backward); the meet over edges is union (May) or intersection
// (Must).
type Problem struct {
	Dir Direction
	// May selects union meet; false means intersection (must) meet.
	May  bool
	Bits int
	// Boundary is the entry value (forward: entry block in-set; backward:
	// out-set of blocks with no successors). Nil means empty.
	Boundary BitSet
	// Init is the initial interior value for all non-boundary in/out sets.
	// Nil means empty; must problems typically pass the universal set.
	Init BitSet
	// Gen and Kill are per-block transfer sets, indexed by block ID.
	Gen, Kill []BitSet
}

// Solve runs the iterative worklist algorithm and returns the fixpoint
// in/out set per block. For Must problems, unreachable blocks keep Init.
func Solve(c *CFG, p Problem) (in, out []BitSet) {
	n := len(c.F.Blocks)
	in = make([]BitSet, n)
	out = make([]BitSet, n)
	for i := 0; i < n; i++ {
		in[i] = NewBitSet(p.Bits)
		out[i] = NewBitSet(p.Bits)
		if p.Init != nil {
			in[i].CopyFrom(p.Init)
			out[i].CopyFrom(p.Init)
		}
	}
	boundary := p.Boundary
	if boundary == nil {
		boundary = NewBitSet(p.Bits)
	}
	transfer := func(dst, src BitSet, b int) {
		for i := range dst {
			dst[i] = p.Gen[b][i] | (src[i] &^ p.Kill[b][i])
		}
	}
	meetInto := func(dst BitSet, edges []int, get func(int) BitSet) {
		if len(edges) == 0 {
			dst.CopyFrom(boundary)
			return
		}
		dst.CopyFrom(get(edges[0]))
		for _, e := range edges[1:] {
			if p.May {
				dst.UnionWith(get(e))
			} else {
				dst.IntersectWith(get(e))
			}
		}
	}
	// Iterate in RPO (forward) or reverse RPO (backward) until stable.
	order := c.RPO
	if p.Dir == Backward {
		order = make([]int, len(c.RPO))
		for i, b := range c.RPO {
			order[len(c.RPO)-1-i] = b
		}
	}
	tmp := NewBitSet(p.Bits)
	for changed := true; changed; {
		changed = false
		for _, b := range order {
			if p.Dir == Forward {
				if b == 0 {
					in[b].CopyFrom(boundary)
				} else {
					meetInto(in[b], c.Preds[b], func(e int) BitSet { return out[e] })
				}
				transfer(tmp, in[b], b)
				if !tmp.Equal(out[b]) {
					out[b].CopyFrom(tmp)
					changed = true
				}
			} else {
				meetInto(out[b], c.Succs[b], func(e int) BitSet { return in[e] })
				transfer(tmp, out[b], b)
				if !tmp.Equal(in[b]) {
					in[b].CopyFrom(tmp)
					changed = true
				}
			}
		}
	}
	return in, out
}

// Liveness computes per-block live-in/live-out register sets (backward
// may problem: gen = upward-exposed uses, kill = defs).
func Liveness(c *CFG) (liveIn, liveOut []BitSet) {
	f := c.F
	n := len(f.Blocks)
	gen := make([]BitSet, n)
	kill := make([]BitSet, n)
	var ubuf []ir.Reg
	for i, b := range f.Blocks {
		gen[i] = NewBitSet(f.NumRegs)
		kill[i] = NewBitSet(f.NumRegs)
		for j := range b.Instrs {
			in := &b.Instrs[j]
			ubuf = Uses(in, ubuf[:0])
			for _, r := range ubuf {
				if !kill[i].Has(int(r)) {
					gen[i].Set(int(r))
				}
			}
			if d := Def(in); d != ir.NoReg {
				kill[i].Set(int(d))
			}
		}
	}
	return Solve(c, Problem{
		Dir: Backward, May: true, Bits: f.NumRegs, Gen: gen, Kill: kill,
	})
}

// StepBack updates live in place across one instruction, walking backward:
// live = (live − def) ∪ uses.
func StepBack(live BitSet, in *ir.Instr) {
	if d := Def(in); d != ir.NoReg {
		live.Clear(int(d))
	}
	for _, r := range []ir.Reg{in.A, in.B, in.C} {
		if r != ir.NoReg {
			live.Set(int(r))
		}
	}
	for _, r := range in.Args {
		if r != ir.NoReg {
			live.Set(int(r))
		}
	}
}

// LiveAfter returns, for block b, the register set live immediately after
// each instruction index (i.e. before the next instruction executes).
func LiveAfter(c *CFG, liveOut []BitSet, b int) []BitSet {
	instrs := c.F.Blocks[b].Instrs
	after := make([]BitSet, len(instrs))
	live := liveOut[b].Copy()
	for j := len(instrs) - 1; j >= 0; j-- {
		after[j] = live.Copy()
		StepBack(live, &instrs[j])
	}
	return after
}

// MustDefined computes, per block, the set of registers guaranteed to be
// defined on entry (forward must problem). The entry boundary is the
// parameter set; unreachable blocks keep the universal set, so dead code
// never reports use-before-def.
func MustDefined(c *CFG) (in []BitSet) {
	f := c.F
	n := len(f.Blocks)
	gen := make([]BitSet, n)
	kill := make([]BitSet, n)
	for i, b := range f.Blocks {
		gen[i] = NewBitSet(f.NumRegs)
		kill[i] = NewBitSet(f.NumRegs)
		for j := range b.Instrs {
			if d := Def(&b.Instrs[j]); d != ir.NoReg {
				gen[i].Set(int(d))
			}
		}
	}
	boundary := NewBitSet(f.NumRegs)
	for _, r := range f.Params {
		boundary.Set(int(r))
	}
	universal := NewBitSet(f.NumRegs)
	universal.Fill(f.NumRegs)
	in, _ = Solve(c, Problem{
		Dir: Forward, May: false, Bits: f.NumRegs,
		Boundary: boundary, Init: universal, Gen: gen, Kill: kill,
	})
	return in
}

// DefSite identifies one instruction by block and index, used by
// ReachingDefs.
type DefSite struct {
	Block, Index int
}

// ReachingDefs computes which of the given definition sites reach the
// entry of each block (forward may problem over site indices). A site is
// killed by any instruction in a block that defines the same register.
func ReachingDefs(c *CFG, sites []DefSite) (in []BitSet) {
	f := c.F
	n := len(f.Blocks)
	// sitesByReg[r] lists site indices defining register r.
	sitesByReg := map[ir.Reg][]int{}
	for i, s := range sites {
		d := Def(&f.Blocks[s.Block].Instrs[s.Index])
		sitesByReg[d] = append(sitesByReg[d], i)
	}
	gen := make([]BitSet, n)
	kill := make([]BitSet, n)
	for b := 0; b < n; b++ {
		gen[b] = NewBitSet(len(sites))
		kill[b] = NewBitSet(len(sites))
	}
	for b, blk := range f.Blocks {
		for j := range blk.Instrs {
			d := Def(&blk.Instrs[j])
			if d == ir.NoReg {
				continue
			}
			// Any def of r kills all monitored sites for r...
			for _, si := range sitesByReg[d] {
				kill[b].Set(si)
				gen[b].Clear(si)
			}
			// ...and if this instruction is itself a monitored site, it is
			// (for now) downward-exposed.
			for si, s := range sites {
				if s.Block == b && s.Index == j {
					gen[b].Set(si)
				}
			}
		}
	}
	in, _ = Solve(c, Problem{
		Dir: Forward, May: true, Bits: len(sites), Gen: gen, Kill: kill,
	})
	return in
}
