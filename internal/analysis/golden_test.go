package analysis_test

// Golden-diagnostics tests for `facadec vet`: each testdata program either
// contains a real facade-safety violation (leak.fj) or is clean and gets a
// violation seeded into P' (ubd.fj, clobber.fj). The linter's file:line
// diagnostics must match the checked-in .want files exactly.

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/facade"
)

var update = flag.Bool("update", false, "rewrite golden .want files")

func vetFile(t *testing.T, name string, opts ...facade.VetOption) *facade.VetResult {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	r, err := facade.Vet(map[string]string{name: string(src)}, opts...)
	if err != nil {
		t.Fatalf("vet %s: %v", name, err)
	}
	return r
}

func checkGolden(t *testing.T, name string, r *facade.VetResult) {
	t.Helper()
	if len(r.VerifyErrs) > 0 {
		t.Fatalf("%s: unexpected verifier errors: %v", name, r.VerifyErrs)
	}
	if len(r.Diagnostics) == 0 {
		t.Fatalf("%s: expected lint findings, got none", name)
	}
	got := strings.Join(r.Diagnostics, "\n") + "\n"
	wantPath := filepath.Join("testdata", strings.TrimSuffix(name, ".fj")+".want")
	if *update {
		if err := os.WriteFile(wantPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(wantPath)
	if err != nil {
		t.Fatalf("%s (run with -update to regenerate)", err)
	}
	if got != string(want) {
		t.Errorf("%s diagnostics mismatch.\ngot:\n%s\nwant:\n%s", name, got, want)
	}
}

func TestGoldenFacadeLeak(t *testing.T) {
	r := vetFile(t, "leak.fj")
	checkGolden(t, "leak.fj", r)
	for _, d := range r.Diagnostics {
		if !strings.Contains(d, "[facade-leak]") {
			t.Errorf("expected [facade-leak] diagnostic, got %q", d)
		}
		if !strings.Contains(d, "leak.fj:") {
			t.Errorf("diagnostic missing file:line position: %q", d)
		}
	}
}

func TestGoldenUseBeforeDef(t *testing.T) {
	// The program is clean on its own…
	if r := vetFile(t, "ubd.fj"); !r.Clean() {
		t.Fatalf("ubd.fj should vet clean without seeding: %v %v", r.VerifyErrs, r.Diagnostics)
	}
	// …and flagged once a use-before-def is seeded into P'.
	r := vetFile(t, "ubd.fj", facade.VetWithSeedViolation("use-before-def"))
	checkGolden(t, "ubd.fj", r)
	for _, d := range r.Diagnostics {
		if !strings.Contains(d, "[use-before-def]") {
			t.Errorf("expected [use-before-def] diagnostic, got %q", d)
		}
	}
}

func TestGoldenPoolClobber(t *testing.T) {
	if r := vetFile(t, "clobber.fj"); !r.Clean() {
		t.Fatalf("clobber.fj should vet clean without seeding: %v %v", r.VerifyErrs, r.Diagnostics)
	}
	r := vetFile(t, "clobber.fj", facade.VetWithSeedViolation("pool-clobber"))
	checkGolden(t, "clobber.fj", r)
	for _, d := range r.Diagnostics {
		if !strings.Contains(d, "[pool-clobber]") {
			t.Errorf("expected [pool-clobber] diagnostic, got %q", d)
		}
	}
}
