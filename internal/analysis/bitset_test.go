package analysis

// Edge-case tests for BitSet: sizes that are not a multiple of 64, empty
// sets, and mixed-capacity operands for the set operations.

import "testing"

func TestBitSetFillNonMultipleOf64(t *testing.T) {
	for _, n := range []int{1, 63, 65, 100, 127, 130} {
		s := NewBitSet(n)
		s.Fill(n)
		if got := s.Count(); got != n {
			t.Errorf("Fill(%d): Count = %d, want %d", n, got, n)
		}
		for i := 0; i < n; i++ {
			if !s.Has(i) {
				t.Fatalf("Fill(%d): bit %d not set", n, i)
			}
		}
		// No bits past n may leak into the tail word: Count above would
		// catch them, but check the last word mask explicitly too.
		if rem := uint(n % 64); rem != 0 {
			if tail := s[len(s)-1] &^ ((1 << rem) - 1); tail != 0 {
				t.Errorf("Fill(%d): tail bits set past n: %#x", n, tail)
			}
		}
	}
}

func TestBitSetFillMultipleOf64(t *testing.T) {
	s := NewBitSet(128)
	s.Fill(128)
	if got := s.Count(); got != 128 {
		t.Fatalf("Fill(128): Count = %d, want 128", got)
	}
	// Partial fill of a larger set touches only the first n bits.
	p := NewBitSet(128)
	p.Fill(64)
	if got := p.Count(); got != 64 {
		t.Fatalf("Fill(64) on cap-128: Count = %d, want 64", got)
	}
	if p.Has(64) || !p.Has(63) {
		t.Fatal("Fill(64) boundary wrong")
	}
}

func TestBitSetEmpty(t *testing.T) {
	e := NewBitSet(0)
	if len(e) != 0 {
		t.Fatalf("NewBitSet(0) has %d words, want 0", len(e))
	}
	if e.Count() != 0 {
		t.Fatalf("empty Count = %d", e.Count())
	}
	e.Fill(0) // must not panic
	if e.Count() != 0 {
		t.Fatal("Fill(0) set bits on the empty set")
	}
	if !e.Equal(NewBitSet(0)) {
		t.Fatal("empty != empty")
	}
	// Empty vs non-empty-capacity sets: equal while no bits are set,
	// unequal as soon as the longer set has a bit.
	s := NewBitSet(70)
	if !e.Equal(s) || !s.Equal(e) {
		t.Fatal("empty set != all-zero 70-bit set")
	}
	s.Set(69)
	if e.Equal(s) || s.Equal(e) {
		t.Fatal("empty set == 70-bit set with bit 69")
	}
	// Set operations with an empty operand are no-ops.
	if e.UnionWith(s) {
		t.Fatal("union into the empty set reported change")
	}
	if s.IntersectWith(e); s.Count() != 0 {
		t.Fatal("intersect with empty did not clear")
	}
}

func TestBitSetEqualMixedCapacity(t *testing.T) {
	a := NewBitSet(70)
	b := NewBitSet(200)
	a.Set(0)
	a.Set(69)
	b.Set(0)
	b.Set(69)
	if !a.Equal(b) || !b.Equal(a) {
		t.Fatal("same bits, different capacities: not equal")
	}
	b.Set(199)
	if a.Equal(b) || b.Equal(a) {
		t.Fatal("bit in the longer tail must break equality")
	}
	b.Clear(199)
	b.Clear(69)
	if a.Equal(b) || b.Equal(a) {
		t.Fatal("differing low words must break equality")
	}
}

func TestBitSetUnionIntersectMixedCapacity(t *testing.T) {
	// Union from a longer set ignores bits past the receiver's capacity.
	s := NewBitSet(70)
	long := NewBitSet(200)
	long.Set(3)
	long.Set(69)
	long.Set(150)
	if !s.UnionWith(long) {
		t.Fatal("union reported no change")
	}
	if !s.Has(3) || !s.Has(69) || s.Count() != 2 {
		t.Fatalf("union from longer set: got count %d", s.Count())
	}
	// Union from a shorter set zero-extends.
	s2 := NewBitSet(200)
	s2.Set(150)
	short := NewBitSet(64)
	short.Set(10)
	if !s2.UnionWith(short) || !s2.Has(10) || !s2.Has(150) {
		t.Fatal("union from shorter set broken")
	}
	// Intersect with a shorter set clears everything past its length.
	s3 := NewBitSet(200)
	s3.Set(10)
	s3.Set(150)
	mask := NewBitSet(64)
	mask.Set(10)
	mask.Set(11)
	if !s3.IntersectWith(mask) {
		t.Fatal("intersect reported no change")
	}
	if !s3.Has(10) || s3.Has(150) || s3.Count() != 1 {
		t.Fatalf("intersect with shorter set: count %d", s3.Count())
	}
}
