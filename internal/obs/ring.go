package obs

import "sync"

// DefaultRingCapacity bounds the event ring of a fresh Registry. At ~64
// bytes per event the default ring holds the full GC and iteration event
// stream of a typical repro run in under 256 KB.
const DefaultRingCapacity = 4096

// Event is one runtime occurrence: a collection, an iteration boundary, a
// page-manager release. Kind names the occurrence, Label refines it, and
// A/B/C carry kind-specific payloads (documented at the Ev* constants).
type Event struct {
	Seq   uint64 `json:"seq"`
	Nanos int64  `json:"t_ns"` // nanoseconds since the registry was created
	Kind  string `json:"kind"`
	Label string `json:"label,omitempty"`
	A     int64  `json:"a,omitempty"`
	B     int64  `json:"b,omitempty"`
	C     int64  `json:"c,omitempty"`
}

// Ring is a bounded event buffer: when full, new events overwrite the
// oldest. Sequence numbers are global, so a snapshot reveals how many
// events were dropped.
type Ring struct {
	mu   sync.Mutex
	buf  []Event
	next uint64 // total events ever appended
}

// NewRing creates a ring holding up to capacity events.
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Event, 0, capacity)}
}

// Append records an event, assigning its sequence number.
func (r *Ring) Append(e Event) {
	r.mu.Lock()
	e.Seq = r.next
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
	} else {
		r.buf[int(r.next)%cap(r.buf)] = e
	}
	r.next++
	r.mu.Unlock()
}

// Len returns the number of events currently buffered.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// Total returns the number of events ever appended (including overwritten
// ones).
func (r *Ring) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next
}

// Snapshot returns the buffered events oldest-first.
func (r *Ring) Snapshot() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.buf))
	if len(r.buf) < cap(r.buf) || r.next == 0 {
		copy(out, r.buf)
		return out
	}
	head := int(r.next) % cap(r.buf) // oldest element
	n := copy(out, r.buf[head:])
	copy(out[n:], r.buf[:head])
	return out
}
