// Package obs is the runtime observability layer: low-overhead atomic
// counters, gauges, and fixed-bucket histograms, plus a bounded event ring
// buffer, collected under a Registry whose Snapshot marshals to JSON.
//
// The layers that matter to the paper's evaluation publish here:
//
//   - internal/heap records per-collection pause times (minor/full),
//     safepoint wait times, allocation sizes, promoted/evacuated bytes,
//     and remembered-set scan counts;
//   - internal/offheap records page acquire/release/recycle traffic and
//     the live-page high-water mark;
//   - internal/vm records instructions executed, boundary crossings, and
//     facade-pool hits;
//   - the framework engines (graphchi, hyracks, gps) emit iteration and
//     phase events.
//
// Hot paths hold direct pointers to their instruments — the Registry map
// is consulted only at creation and snapshot time, so an Observe or Add
// costs one or two atomic operations.
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value with high-water tracking.
type Gauge struct {
	v  atomic.Int64
	hw atomic.Int64
}

// Set stores v and raises the high-water mark if exceeded.
func (g *Gauge) Set(v int64) {
	g.v.Store(v)
	g.raise(v)
}

// Add adjusts the gauge by d and returns the new value, raising the
// high-water mark if exceeded.
func (g *Gauge) Add(d int64) int64 {
	v := g.v.Add(d)
	g.raise(v)
	return v
}

func (g *Gauge) raise(v int64) {
	for {
		cur := g.hw.Load()
		if v <= cur || g.hw.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// HighWater returns the largest value the gauge has held.
func (g *Gauge) HighWater() int64 { return g.hw.Load() }

// Registry names and owns a process's instruments. The zero value is not
// usable; call NewRegistry.
type Registry struct {
	start time.Time

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram

	events *Ring
	sink   atomic.Pointer[func(Event)]
}

// NewRegistry creates an empty registry with a default-capacity event
// ring.
func NewRegistry() *Registry {
	return &Registry{
		start:    time.Now(),
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		events:   NewRing(DefaultRingCapacity),
	}
}

// Counter returns the counter registered under name, creating it on first
// use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket bounds on first use. Later calls ignore bounds.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// SetEventSink installs a callback invoked synchronously for every emitted
// event (nil uninstalls). Sinks must be fast; they run on the emitting
// thread, which may be a stopped-world collector.
func (r *Registry) SetEventSink(fn func(Event)) {
	if fn == nil {
		r.sink.Store(nil)
		return
	}
	r.sink.Store(&fn)
}

// Emit records an event in the ring buffer, stamped with nanoseconds since
// the registry was created, and forwards it to the sink if one is set.
func (r *Registry) Emit(kind, label string, a, b, c int64) {
	e := Event{
		Nanos: time.Since(r.start).Nanoseconds(),
		Kind:  kind,
		Label: label,
		A:     a,
		B:     b,
		C:     c,
	}
	r.events.Append(e)
	if fn := r.sink.Load(); fn != nil {
		(*fn)(e)
	}
}

// Events returns the registry's event ring.
func (r *Registry) Events() *Ring { return r.events }

// Snapshot captures every instrument's current value. It is safe to call
// concurrently with updates; individual values are atomically read but the
// snapshot as a whole is not a consistent cut.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	counters := make(map[string]int64, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c.Load()
	}
	gauges := make(map[string]int64, len(r.gauges)*2)
	for n, g := range r.gauges {
		gauges[n] = g.Load()
		gauges[n+".hw"] = g.HighWater()
	}
	hists := make(map[string]HistogramSnapshot, len(r.hists))
	for n, h := range r.hists {
		hists[n] = h.Snapshot()
	}
	r.mu.Unlock()
	return Snapshot{
		Counters:   counters,
		Gauges:     gauges,
		Histograms: hists,
		Events:     r.events.Snapshot(),
	}
}

// Snapshot is a JSON-marshalable capture of a registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Events     []Event                      `json:"events,omitempty"`
}

// Instrument names used across the runtime. Centralized so reports and
// dashboards do not chase string literals through the packages.
const (
	// Heap (internal/heap).
	HistGCPause       = "heap.gc_pause_ns"       // every stop-the-world pause
	HistGCPauseMinor  = "heap.gc_minor_pause_ns" // minor collections only
	HistGCPauseFull   = "heap.gc_full_pause_ns"  // full collections only
	HistSafepointWait = "heap.safepoint_wait_ns" // mutator wait at safepoints
	HistAllocSize     = "heap.alloc_size_bytes"  // per-allocation sizes
	CtrPromotedBytes  = "heap.promoted_bytes"    // bytes evacuated young->old by minor GCs
	CtrEvacuated      = "heap.evacuated_bytes"   // bytes moved by full-GC compaction
	CtrRemsetScanned  = "heap.remset_slots_scanned"

	// Off-heap page store (internal/offheap).
	CtrPageAcquires = "offheap.page_acquires"
	CtrPageReleases = "offheap.page_releases"
	CtrPageRecycles = "offheap.page_recycles"
	GaugePagesLive  = "offheap.pages_live"

	// Disk tier (internal/offheap tiering).
	CtrPagesSpilled    = "offheap.pages_spilled"    // evictions DRAM -> disk
	CtrPagesPromoted   = "offheap.pages_promoted"   // promotions disk -> DRAM
	CtrSpillBytes      = "offheap.spill_bytes"      // bytes written to the spill file
	CtrPromoteBytes    = "offheap.promote_bytes"    // bytes read back from the spill file
	GaugePagesResident = "offheap.pages_resident"   // live pages currently in DRAM
	GaugePagesDisk     = "offheap.pages_disk"       // live pages currently spilled
	HistSpillStall     = "offheap.spill_stall_ns"   // per-eviction write stall
	HistPromoteStall   = "offheap.promote_stall_ns" // per-promotion read stall

	// VM (internal/vm).
	CtrInstructions   = "vm.instructions"
	CtrBoundaryCalls  = "vm.boundary_crossings"
	CtrFacadePoolHits = "vm.facade_pool_hits"

	// Fault injection (internal/faults consumers).
	CtrFaultHeapAlloc   = "faults.heap_alloc_injected"   // injected allocation failures
	CtrFaultPageAcquire = "faults.page_acquire_injected" // injected page-acquire failures
	CtrFaultTierSpill   = "faults.tier_spill_injected"   // injected spill-write failures
	CtrFaultTierLoad    = "faults.tier_load_injected"    // injected promotion-read failures

	// Recovery (cluster engines and the single-machine GraphChi engine).
	CtrCheckpoints        = "recovery.checkpoints"         // superstep checkpoints taken
	CtrCheckpointBytes    = "recovery.checkpoint_bytes"    // codec-encoded checkpoint payload
	CtrCheckpointsDropped = "recovery.checkpoints_dropped" // superseded checkpoints released
	CtrRestores           = "recovery.restores"            // checkpoint restores (crash or OOM)
	CtrNodeRestarts       = "recovery.node_restarts"       // node VMs rebuilt after a crash
	CtrTaskRetries        = "recovery.task_retries"        // map/reduce tasks re-executed
	CtrTasksDegraded      = "recovery.tasks_degraded"      // tasks drained to a healthy node
	CtrIntervalRetries    = "recovery.interval_retries"    // GraphChi sub-iterations replayed from shard
	CtrWorkerRestarts     = "recovery.worker_restarts"     // GraphChi update workers rebuilt
	CtrBudgetHalvings     = "recovery.budget_halvings"     // GraphChi memory-budget degradations

	// Static analysis (internal/analysis via facade.Run / facadec vet).
	CtrVerifyFuncs  = "analysis.verify_funcs"  // functions checked by the IR verifier
	CtrLintFindings = "analysis.lint_findings" // facade-safety lint findings
	CtrDCERemoved   = "analysis.dce_removed"   // instructions removed by dead-code elimination

	// Lifetime inference (internal/analysis lifetime pass, consumed by
	// internal/heap pretenuring and epoch regions).
	CtrLifetimePretenured   = "analysis.lifetime_pretenured"    // allocations placed old-gen by pretenuring
	CtrLifetimeRegionAllocs = "analysis.lifetime_region_allocs" // allocations served from epoch regions
	CtrLifetimeDemotions    = "analysis.lifetime_demotions"     // sites demoted to unknown at runtime

	// Daemon (internal/server, the repro serve runtime-as-a-service layer).
	CtrServerSubmitted  = "server.jobs_submitted"      // jobs accepted into the queue
	CtrServerDone       = "server.jobs_done"           // jobs finished successfully
	CtrServerFailed     = "server.jobs_failed"         // jobs finished with an error
	CtrServerCanceled   = "server.jobs_canceled"       // jobs canceled (client or timeout)
	CtrServerRejected   = "server.jobs_rejected"       // submissions rejected by admission control
	CtrServerWarmHits   = "server.warm_hits"           // jobs served by a pooled warm VM
	CtrServerWarmMisses = "server.warm_misses"         // jobs that had to build a fresh VM
	CtrServerPoolDrops  = "server.pool_rebuilds"       // pool entries dropped for rebuild (failed re-verify)
	GaugeServerRunning  = "server.jobs_running"        // jobs currently executing
	GaugeServerQueued   = "server.queue_depth"         // jobs waiting for admission
	GaugeServerReserved = "server.heap_reserved_bytes" // aggregate heap budget reserved by admitted jobs
	GaugeServerWarmPool = "server.warm_pool_size"      // VMs parked in the warm pool

	// Daemon crash safety (journal, replay, retry, drain — docs/SERVER.md).
	CtrServerJournalEvents = "server.journal_events" // events appended to the job journal
	CtrServerJournalSyncs  = "server.journal_syncs"  // fsync batches committed (group commit)
	CtrServerReplayed      = "server.jobs_replayed"  // non-terminal jobs re-enqueued by startup replay
	CtrServerRetried       = "server.jobs_retried"   // transient failures automatically re-run
	CtrServerDeadline      = "server.jobs_deadline"  // jobs failed by their deadline_ms
	GaugeServerReplaying   = "server.replaying"      // 1 while recovered jobs are still re-running
	GaugeServerDraining    = "server.draining"       // 1 while a SIGTERM drain is in progress

	// Event kinds.
	EvGC             = "gc"         // label minor|full, A=pause ns, B=promoted objs (minor) / live bytes (full)
	EvIteration      = "iteration"  // label start|end, A=iteration ordinal
	EvPhase          = "phase"      // label map|reduce|superstep..., A=ordinal
	EvManagerRelease = "pm_release" // A=iterID, B=threadID, C=pages released
	EvFault          = "fault"      // label = fault point, A=occurrence count
	EvCheckpoint     = "checkpoint" // label save|restore|drop, A=superstep, B=payload bytes
	EvRecovery       = "recovery"   // label crash|oom, A=node/worker, B=occasion (superstep/phase/sub-iteration)
	EvDegraded       = "degraded"   // label map|reduce|interval, A=failed node / first vertex, B=helper node / new edge budget
)
