package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// EncodeDeterministic writes v as indented JSON with byte-stable output:
// object keys are sorted (including keys that came from struct fields),
// and non-integer numbers are rendered with %.6g so the same metrics
// always serialize to the same bytes regardless of accumulated float
// noise in the last bits. Integers pass through unrounded.
//
// Both the facade.run/v1 and facade.bench/v1 writers go through this
// encoder, which is what makes golden-file schema tests and line-level
// diffs of committed reports possible.
func EncodeDeterministic(w io.Writer, v any) error {
	raw, err := json.Marshal(v)
	if err != nil {
		return err
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	var tree any
	if err := dec.Decode(&tree); err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := writeDet(&buf, tree, 0); err != nil {
		return err
	}
	buf.WriteByte('\n')
	_, err = w.Write(buf.Bytes())
	return err
}

func writeDet(buf *bytes.Buffer, v any, depth int) error {
	switch x := v.(type) {
	case nil:
		buf.WriteString("null")
	case bool:
		if x {
			buf.WriteString("true")
		} else {
			buf.WriteString("false")
		}
	case string:
		b, err := json.Marshal(x)
		if err != nil {
			return err
		}
		buf.Write(b)
	case json.Number:
		buf.WriteString(formatNumber(x))
	case []any:
		if len(x) == 0 {
			buf.WriteString("[]")
			return nil
		}
		buf.WriteByte('[')
		for i, e := range x {
			if i > 0 {
				buf.WriteByte(',')
			}
			indent(buf, depth+1)
			if err := writeDet(buf, e, depth+1); err != nil {
				return err
			}
		}
		indent(buf, depth)
		buf.WriteByte(']')
	case map[string]any:
		if len(x) == 0 {
			buf.WriteString("{}")
			return nil
		}
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		buf.WriteByte('{')
		for i, k := range keys {
			if i > 0 {
				buf.WriteByte(',')
			}
			indent(buf, depth+1)
			kb, err := json.Marshal(k)
			if err != nil {
				return err
			}
			buf.Write(kb)
			buf.WriteString(": ")
			if err := writeDet(buf, x[k], depth+1); err != nil {
				return err
			}
		}
		indent(buf, depth)
		buf.WriteByte('}')
	default:
		return fmt.Errorf("obs: cannot deterministically encode %T", v)
	}
	return nil
}

func indent(buf *bytes.Buffer, depth int) {
	buf.WriteByte('\n')
	for i := 0; i < depth; i++ {
		buf.WriteString("  ")
	}
}

// formatNumber keeps integers exact and renders everything else with %.6g.
func formatNumber(n json.Number) string {
	s := n.String()
	if !strings.ContainsAny(s, ".eE") {
		return s // integer literal, exact
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return s
	}
	return strconv.FormatFloat(f, 'g', 6, 64)
}
