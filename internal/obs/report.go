package obs

import (
	"io"
)

// ReportSchema versions the -json run-report format. Consumers should
// reject reports whose schema they do not understand.
const ReportSchema = "facade.run/v1"

// RunReport is one machine-readable run record: what was run, how long it
// took, the headline metrics, per-data-class allocation counts, and the
// full registry snapshot (GC pause histograms, offheap page high-water
// marks, events). This is the trajectory format benchmark tooling
// consumes.
type RunReport struct {
	Schema  string         `json:"schema"`
	Name    string         `json:"name"`              // e.g. "table2/PR-8g"
	Program string         `json:"program,omitempty"` // "P" or "P'"
	Config  map[string]any `json:"config,omitempty"`

	WallNanos int64 `json:"wall_ns"`

	// Metrics holds the headline scalar results (seconds, bytes, counts)
	// keyed by short names matching the rendered table columns.
	Metrics map[string]float64 `json:"metrics,omitempty"`

	// ClassAllocs counts heap allocations per class name ("[]T" for
	// arrays of element type T), nonzero entries only.
	ClassAllocs map[string]int64 `json:"class_allocs,omitempty"`

	Obs Snapshot `json:"obs"`
}

// NewRunReport creates a report with the schema stamped.
func NewRunReport(name, program string) RunReport {
	return RunReport{
		Schema:  ReportSchema,
		Name:    name,
		Program: program,
		Metrics: make(map[string]float64),
	}
}

// ReportFile is the on-disk container for one or more run reports.
type ReportFile struct {
	Schema  string      `json:"schema"`
	Reports []RunReport `json:"reports"`
}

// EncodeReports writes a ReportFile as indented JSON. The encoding is
// deterministic (sorted keys, %.6g floats), so two runs with identical
// metrics produce byte-identical files.
func EncodeReports(w io.Writer, reports []RunReport) error {
	return EncodeDeterministic(w, ReportFile{Schema: ReportSchema, Reports: reports})
}
