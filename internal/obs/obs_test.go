package obs

import (
	"encoding/json"
	"math"
	"reflect"
	"sync"
	"testing"
)

func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]int64{10, 100, 1000})
	// One observation per interesting edge: below first bound, exactly on
	// each bound, between bounds, and past the last bound (overflow).
	for _, v := range []int64{1, 10, 11, 100, 101, 1000, 1001, 5000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	want := []int64{2, 2, 2, 2} // (..10], (10..100], (100..1000], overflow
	if !reflect.DeepEqual(s.Counts, want) {
		t.Fatalf("bucket counts = %v, want %v", s.Counts, want)
	}
	if s.Count != 8 {
		t.Fatalf("count = %d, want 8", s.Count)
	}
	if s.Min != 1 || s.Max != 5000 {
		t.Fatalf("min/max = %d/%d, want 1/5000", s.Min, s.Max)
	}
	if s.Sum != 1+10+11+100+101+1000+1001+5000 {
		t.Fatalf("sum = %d", s.Sum)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]int64{10, 20, 40, 80})
	for i := int64(1); i <= 100; i++ {
		h.Observe(i) // 10 in b0, 10 in b1, 20 in b2, 40 in b3, 20 overflow
	}
	s := h.Snapshot()
	if q := s.Quantile(0.05); q != 10 {
		t.Fatalf("p5 = %d, want 10", q)
	}
	if q := s.Quantile(0.40); q != 40 {
		t.Fatalf("p40 = %d, want 40", q)
	}
	if q := s.Quantile(0.50); q != 80 {
		t.Fatalf("p50 = %d, want 80", q)
	}
	// Quantiles landing in the overflow bucket clamp to the observed max.
	if q := s.Quantile(0.95); q != 100 {
		t.Fatalf("p95 = %d, want 100", q)
	}
	if q := s.Quantile(1.0); q != 100 {
		t.Fatalf("p100 = %d, want 100", q)
	}
	if (HistogramSnapshot{}).Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile must be 0")
	}
}

func TestHistogramQuantileClampsToMin(t *testing.T) {
	h := NewHistogram([]int64{1000, 2000})
	h.Observe(500)
	s := h.Snapshot()
	// The bucket upper bound (1000) overstates a single 500ns pause; the
	// estimate must clamp to the observed extremes.
	if q := s.Quantile(0.5); q != 500 {
		t.Fatalf("p50 = %d, want 500", q)
	}
}

func TestExponentialBounds(t *testing.T) {
	b := ExponentialBounds(1000, 2, 5)
	want := []int64{1000, 2000, 4000, 8000, 16000}
	if !reflect.DeepEqual(b, want) {
		t.Fatalf("bounds = %v, want %v", b, want)
	}
	// A factor of 1 must still produce strictly ascending bounds.
	flat := ExponentialBounds(5, 1, 4)
	for i := 1; i < len(flat); i++ {
		if flat[i] <= flat[i-1] {
			t.Fatalf("bounds not ascending: %v", flat)
		}
	}
}

func TestConcurrentCountersAndHistograms(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", []int64{8, 64, 512})
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(int64(i % 1000))
				if i%100 == 0 {
					r.Emit(EvIteration, "start", int64(w), int64(i), 0)
				}
			}
		}(w)
	}
	wg.Wait()
	if got := c.Load(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if g.Load() != 0 {
		t.Fatalf("gauge = %d, want 0", g.Load())
	}
	if g.HighWater() < 1 {
		t.Fatalf("gauge high-water = %d, want >= 1", g.HighWater())
	}
	s := h.Snapshot()
	if s.Count != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", s.Count, workers*perWorker)
	}
	var bucketSum int64
	for _, n := range s.Counts {
		bucketSum += n
	}
	if bucketSum != s.Count {
		t.Fatalf("bucket sum %d != count %d", bucketSum, s.Count)
	}
	if r.Events().Total() != workers*perWorker/100 {
		t.Fatalf("events = %d, want %d", r.Events().Total(), workers*perWorker/100)
	}
}

func TestRingOverwriteKeepsNewest(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Append(Event{Kind: "k", A: int64(i)})
	}
	s := r.Snapshot()
	if len(s) != 4 {
		t.Fatalf("len = %d, want 4", len(s))
	}
	for i, e := range s {
		if want := int64(6 + i); e.A != want || e.Seq != uint64(want) {
			t.Fatalf("event %d = %+v, want A=Seq=%d", i, e, want)
		}
	}
	if r.Total() != 10 {
		t.Fatalf("total = %d, want 10", r.Total())
	}
}

func TestEventSink(t *testing.T) {
	r := NewRegistry()
	var got []Event
	r.SetEventSink(func(e Event) { got = append(got, e) })
	r.Emit(EvGC, "minor", 123, 4, 0)
	r.SetEventSink(nil)
	r.Emit(EvGC, "full", 456, 0, 0)
	if len(got) != 1 || got[0].Label != "minor" || got[0].A != 123 {
		t.Fatalf("sink saw %+v", got)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter(CtrInstructions).Add(42)
	r.Gauge(GaugePagesLive).Set(7)
	h := r.Histogram(HistGCPause, GCPauseBounds)
	h.Observe(1500)
	h.Observe(3_000_000)
	r.Emit(EvGC, "minor", 1500, 10, 0)

	snap := r.Snapshot()
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, back) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", back, snap)
	}
	if back.Histograms[HistGCPause].Count != 2 {
		t.Fatalf("histogram lost observations: %+v", back.Histograms[HistGCPause])
	}
	if back.Counters[CtrInstructions] != 42 {
		t.Fatal("counter lost")
	}
	if len(back.Events) != 1 || back.Events[0].Kind != EvGC {
		t.Fatalf("events lost: %+v", back.Events)
	}
}

func TestRunReportJSON(t *testing.T) {
	rep := NewRunReport("table2/PR-8g", "P'")
	rep.WallNanos = 5e9
	rep.Metrics["et_s"] = 5.0
	rep.ClassAllocs = map[string]int64{"ChiVertex": 100}
	r := NewRegistry()
	r.Histogram(HistGCPause, GCPauseBounds).Observe(2000)
	rep.Obs = r.Snapshot()

	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back RunReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != ReportSchema || back.Name != "table2/PR-8g" {
		t.Fatalf("header lost: %+v", back)
	}
	if back.ClassAllocs["ChiVertex"] != 100 {
		t.Fatal("class allocs lost")
	}
	if back.Obs.Histograms[HistGCPause].Count != 1 {
		t.Fatal("obs snapshot lost")
	}
}

func TestQuantileMonotone(t *testing.T) {
	h := NewHistogram(GCPauseBounds)
	for i := 0; i < 500; i++ {
		h.Observe(int64(1000 + i*7919))
	}
	s := h.Snapshot()
	prev := int64(math.MinInt64)
	for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.9, 0.95, 0.99, 1} {
		v := s.Quantile(q)
		if v < prev {
			t.Fatalf("quantile not monotone at q=%v: %d < %d", q, v, prev)
		}
		prev = v
	}
}
