package obs

import (
	"math"
	"sync/atomic"
)

// Histogram is a fixed-bucket histogram of int64 observations. Bucket i
// counts observations v with v <= bounds[i] (and > bounds[i-1]); one extra
// overflow bucket counts observations above the last bound. Observe is one
// binary search plus a handful of atomic adds and never allocates.
type Histogram struct {
	bounds []int64 // ascending upper bounds
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
	min    atomic.Int64
	max    atomic.Int64
}

// NewHistogram creates a histogram with the given ascending bucket upper
// bounds. The bounds slice is not copied; callers must not mutate it.
func NewHistogram(bounds []int64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	h := &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
	return h
}

// Observe records one observation.
func (h *Histogram) Observe(v int64) {
	h.counts[h.BucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// BucketIndex returns the bucket Observe would count v in (binary search
// for the first bound >= v). Callers that batch observations thread-locally
// bucket with this and merge with ObserveBatch.
func (h *Histogram) BucketIndex(v int64) int {
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// NumBuckets returns the number of buckets, including the overflow bucket.
func (h *Histogram) NumBuckets() int { return len(h.counts) }

// ObserveBatch merges a batch of observations bucketed elsewhere: counts
// must have NumBuckets entries indexed by BucketIndex; sum, min, and max
// describe the batch. An empty batch (all-zero counts) is a no-op, so
// callers can flush unconditionally.
func (h *Histogram) ObserveBatch(counts []int64, sum, min, max int64) {
	var total int64
	for i, c := range counts {
		if c != 0 {
			h.counts[i].Add(c)
			total += c
		}
	}
	if total == 0 {
		return
	}
	h.count.Add(total)
	h.sum.Add(sum)
	for {
		cur := h.min.Load()
		if min >= cur || h.min.CompareAndSwap(cur, min) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if max <= cur || h.max.CompareAndSwap(cur, max) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Snapshot captures the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    h.sum.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	if s.Count > 0 {
		s.Min = h.min.Load()
		s.Max = h.max.Load()
	}
	return s
}

// HistogramSnapshot is the JSON-marshalable capture of a Histogram.
// Counts has one entry per bound plus a final overflow bucket.
type HistogramSnapshot struct {
	Bounds []int64 `json:"bounds"`
	Counts []int64 `json:"counts"`
	Count  int64   `json:"count"`
	Sum    int64   `json:"sum"`
	Min    int64   `json:"min,omitempty"`
	Max    int64   `json:"max,omitempty"`
}

// Quantile estimates the q-quantile (0 <= q <= 1) from the buckets: it
// returns the upper bound of the bucket holding the q-th observation,
// clamped to the observed min/max. Returns 0 for an empty histogram.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q >= 1 {
		return s.Max
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, c := range s.Counts {
		seen += c
		if seen >= rank {
			var ub int64
			if i < len(s.Bounds) {
				ub = s.Bounds[i]
			} else {
				ub = s.Max // overflow bucket
			}
			if ub > s.Max {
				ub = s.Max
			}
			if ub < s.Min {
				ub = s.Min
			}
			return ub
		}
	}
	return s.Max
}

// Mean returns the average observation, or 0 for an empty histogram.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// ExponentialBounds returns n ascending bounds starting at start, each
// subsequent bound multiplied by factor (rounded up to stay strictly
// ascending).
func ExponentialBounds(start int64, factor float64, n int) []int64 {
	bounds := make([]int64, n)
	v := float64(start)
	for i := 0; i < n; i++ {
		b := int64(v)
		if i > 0 && b <= bounds[i-1] {
			b = bounds[i-1] + 1
		}
		bounds[i] = b
		v *= factor
	}
	return bounds
}

// Default bucket layouts. Pause and wait buckets span 1µs to ~17s in
// powers of two; allocation sizes span 16B to 8MB.
var (
	GCPauseBounds       = ExponentialBounds(1_000, 2, 25)
	SafepointWaitBounds = ExponentialBounds(1_000, 2, 25)
	AllocSizeBounds     = ExponentialBounds(16, 2, 20)
)
