package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestEncodeDeterministicSortsKeys(t *testing.T) {
	v := map[string]any{"zeta": 1, "alpha": 2, "mid": map[string]any{"b": 1, "a": 2}}
	var b1, b2 bytes.Buffer
	if err := EncodeDeterministic(&b1, v); err != nil {
		t.Fatal(err)
	}
	if err := EncodeDeterministic(&b2, v); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("two encodings differ")
	}
	s := b1.String()
	if strings.Index(s, `"alpha"`) > strings.Index(s, `"zeta"`) {
		t.Fatalf("keys not sorted:\n%s", s)
	}
}

func TestEncodeDeterministicFloats(t *testing.T) {
	var buf bytes.Buffer
	err := EncodeDeterministic(&buf, map[string]any{
		"noisy": 0.1 + 0.2, // 0.30000000000000004 under shortest-repr
		"big":   3548510.123456789,
		"int":   int64(9007199254740993), // > 2^53, must stay exact
	})
	if err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.Contains(s, `"noisy": 0.3`) || strings.Contains(s, "0.30000000000000004") {
		t.Fatalf("float not normalized to %%.6g:\n%s", s)
	}
	if !strings.Contains(s, "9007199254740993") {
		t.Fatalf("large integer lost precision:\n%s", s)
	}
	if !strings.Contains(s, "3.54851e+06") {
		t.Fatalf("big float not in %%.6g form:\n%s", s)
	}
}

// TestGoldenRunSchema pins the facade.run/v1 wire format byte for byte.
// If it fails because the format intentionally changed, bump ReportSchema
// and regenerate with -update.
func TestGoldenRunSchema(t *testing.T) {
	rep := NewRunReport("table2/PR-8g", "P'")
	rep.Config = map[string]any{"workers": 4, "heap_bytes": int64(24 << 20)}
	rep.WallNanos = 81000000
	rep.Metrics = map[string]float64{
		"et_s":            0.081,
		"throughput_eps":  2908750.4567,
		"gc_ms":           0,
		"noise_sensitive": 0.1 + 0.2,
	}
	rep.ClassAllocs = map[string]int64{"Vertex": 256000, "[]Edge": 20}
	rep.Obs = Snapshot{
		Counters: map[string]int64{CtrInstructions: 123456},
		Gauges:   map[string]int64{GaugePagesLive: 30},
	}
	var buf bytes.Buffer
	if err := EncodeReports(&buf, []RunReport{rep}); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "golden_run.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("facade.run/v1 encoding changed:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}
