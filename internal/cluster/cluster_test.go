package cluster

import (
	"fmt"
	"testing"

	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/lower"
	"repro/internal/stdlib"
	"repro/internal/vm"
)

func testProgram(t *testing.T) *ir.Program {
	t.Helper()
	files, err := stdlib.ParseWith(map[string]string{"t.fj": `
class Work {
    static int square(int x) { return x * x; }
}
`})
	if err != nil {
		t.Fatal(err)
	}
	h, err := lang.BuildHierarchy(files...)
	if err != nil {
		t.Fatal(err)
	}
	if err := lang.Check(h); err != nil {
		t.Fatal(err)
	}
	p, err := lower.Program(h)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNodesAreIsolated(t *testing.T) {
	p := testProgram(t)
	cl, err := New(p, Config{NumNodes: 3, HeapPerNode: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if len(cl.Nodes) != 3 {
		t.Fatal("node count")
	}
	// Shared-nothing: distinct VM and heap instances.
	for i := 0; i < 3; i++ {
		for j := i + 1; j < 3; j++ {
			if cl.Nodes[i].VM == cl.Nodes[j].VM || cl.Nodes[i].VM.Heap == cl.Nodes[j].VM.Heap {
				t.Fatal("nodes share a VM/heap")
			}
		}
	}
}

func TestParallelEachRunsAllAndPropagatesErrors(t *testing.T) {
	p := testProgram(t)
	cl, err := New(p, Config{NumNodes: 4, HeapPerNode: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	results := make([]int64, 4)
	err = cl.ParallelEach(func(n *Node) error {
		v, err := n.Main.InvokeStatic("Work", "square", vm.I(int64(n.ID+2)))
		if err != nil {
			return err
		}
		results[n.ID] = int64(int32(v))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		want := int64((i + 2) * (i + 2))
		if r != want {
			t.Fatalf("node %d: %d want %d", i, r, want)
		}
	}
	err = cl.ParallelEach(func(n *Node) error {
		if n.ID == 2 {
			return fmt.Errorf("boom")
		}
		return nil
	})
	if err == nil || err.Error() != "boom" {
		t.Fatalf("error not propagated: %v", err)
	}
}

func TestNetworkDeliversAndCounts(t *testing.T) {
	p := testProgram(t)
	cl, err := New(p, Config{NumNodes: 2, HeapPerNode: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.Net.Send(Frame{From: 0, To: 1, Tag: "x", Data: []byte("abcd")})
	cl.Net.Send(Frame{From: 1, To: 0, Tag: "y", Data: []byte("zz")})
	f := cl.Net.Recv(1)
	if f.From != 0 || string(f.Data) != "abcd" {
		t.Fatalf("frame: %+v", f)
	}
	g := cl.Net.Recv(0)
	if g.Tag != "y" {
		t.Fatalf("frame: %+v", g)
	}
	if cl.Net.BytesSent() != 6 {
		t.Fatalf("bytes: %d", cl.Net.BytesSent())
	}
}

func TestStatsAggregate(t *testing.T) {
	p := testProgram(t)
	cl, err := New(p, Config{NumNodes: 2, HeapPerNode: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	// Allocate on node 0 only.
	err = cl.ParallelEach(func(n *Node) error {
		if n.ID != 0 {
			return nil
		}
		for i := 0; i < 100; i++ {
			o, err := n.Main.NewArr("int", 1000)
			if err != nil {
				return err
			}
			n.Main.FreeObj(o)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	st := cl.Stats()
	if st.MaxHeapPeak == 0 {
		t.Fatal("no heap peak recorded")
	}
}
