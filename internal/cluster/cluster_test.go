package cluster

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/lower"
	"repro/internal/stdlib"
	"repro/internal/vm"
)

func testProgram(t *testing.T) *ir.Program {
	t.Helper()
	files, err := stdlib.ParseWith(map[string]string{"t.fj": `
class Work {
    static int square(int x) { return x * x; }
}
`})
	if err != nil {
		t.Fatal(err)
	}
	h, err := lang.BuildHierarchy(files...)
	if err != nil {
		t.Fatal(err)
	}
	if err := lang.Check(h); err != nil {
		t.Fatal(err)
	}
	p, err := lower.Program(h)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNodesAreIsolated(t *testing.T) {
	p := testProgram(t)
	cl, err := New(p, Config{NumNodes: 3, HeapPerNode: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if len(cl.Nodes) != 3 {
		t.Fatal("node count")
	}
	// Shared-nothing: distinct VM and heap instances.
	for i := 0; i < 3; i++ {
		for j := i + 1; j < 3; j++ {
			if cl.Nodes[i].VM == cl.Nodes[j].VM || cl.Nodes[i].VM.Heap == cl.Nodes[j].VM.Heap {
				t.Fatal("nodes share a VM/heap")
			}
		}
	}
}

func TestParallelEachRunsAllAndPropagatesErrors(t *testing.T) {
	p := testProgram(t)
	cl, err := New(p, Config{NumNodes: 4, HeapPerNode: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	results := make([]int64, 4)
	err = cl.ParallelEach(func(n *Node) error {
		v, err := n.Main.InvokeStatic("Work", "square", vm.I(int64(n.ID+2)))
		if err != nil {
			return err
		}
		results[n.ID] = int64(int32(v))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		want := int64((i + 2) * (i + 2))
		if r != want {
			t.Fatalf("node %d: %d want %d", i, r, want)
		}
	}
	err = cl.ParallelEach(func(n *Node) error {
		if n.ID == 2 {
			return fmt.Errorf("boom")
		}
		return nil
	})
	if err == nil || err.Error() != "node 2: boom" {
		t.Fatalf("error not tagged with its node: %v", err)
	}
	// Every failing node contributes, not just an arbitrary winner.
	err = cl.ParallelEach(func(n *Node) error {
		if n.ID%2 == 1 {
			return fmt.Errorf("boom %d", n.ID)
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "node 1: boom 1") ||
		!strings.Contains(err.Error(), "node 3: boom 3") {
		t.Fatalf("joined error missing a node: %v", err)
	}
	ne := FirstNodeError(err)
	if ne == nil || ne.ID != 1 {
		t.Fatalf("FirstNodeError = %+v", ne)
	}
}

func TestNetworkDeliversAndCounts(t *testing.T) {
	p := testProgram(t)
	cl, err := New(p, Config{NumNodes: 2, HeapPerNode: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.Net.Send(Frame{From: 0, To: 1, Tag: "x", Data: []byte("abcd")})
	cl.Net.Send(Frame{From: 1, To: 0, Tag: "y", Data: []byte("zz")})
	f, err := cl.Net.Recv(1)
	if err != nil {
		t.Fatal(err)
	}
	if f.From != 0 || string(f.Data) != "abcd" {
		t.Fatalf("frame: %+v", f)
	}
	g, err := cl.Net.Recv(0)
	if err != nil {
		t.Fatal(err)
	}
	if g.Tag != "y" {
		t.Fatalf("frame: %+v", g)
	}
	if cl.Net.BytesSent() != 6 {
		t.Fatalf("bytes: %d", cl.Net.BytesSent())
	}
}

func TestStatsAggregate(t *testing.T) {
	p := testProgram(t)
	cl, err := New(p, Config{NumNodes: 2, HeapPerNode: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	// Allocate on node 0 only.
	err = cl.ParallelEach(func(n *Node) error {
		if n.ID != 0 {
			return nil
		}
		for i := 0; i < 100; i++ {
			o, err := n.Main.NewArr("int", 1000)
			if err != nil {
				return err
			}
			n.Main.FreeObj(o)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	st := cl.Stats()
	if st.MaxHeapPeak == 0 {
		t.Fatal("no heap peak recorded")
	}
}

// TestUnboundedMailboxNoDeadlock is the regression test for the fixed-cap
// mailbox deadlock: a sender flooding far more frames than the old 1024
// channel capacity must never block, even with no consumer running.
func TestUnboundedMailboxNoDeadlock(t *testing.T) {
	p := testProgram(t)
	cl, err := New(p, Config{NumNodes: 2, HeapPerNode: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	done := make(chan struct{})
	go func() {
		for i := 0; i < 5000; i++ {
			cl.Net.Send(Frame{From: 0, To: 1, Data: []byte("x")})
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("sender blocked: mailbox is not unbounded")
	}
	for i := 0; i < 5000; i++ {
		if _, err := cl.Net.Recv(1); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
	}
}

// TestRecvStallNamesNodes: a receiver with a silent peer gets a diagnosable
// error naming the quiet link instead of hanging.
func TestRecvStallNamesNodes(t *testing.T) {
	p := testProgram(t)
	cl, err := New(p, Config{NumNodes: 3, HeapPerNode: 4 << 20, RecvTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.Net.Send(Frame{From: 1, To: 2, Data: []byte("only one")})
	if _, err := cl.Net.Recv(2); err != nil {
		t.Fatalf("first frame should arrive: %v", err)
	}
	_, err = cl.Net.Recv(2)
	if err == nil {
		t.Fatal("stalled Recv returned no error")
	}
	if !strings.Contains(err.Error(), "node 2") || !strings.Contains(err.Error(), "node 0") {
		t.Fatalf("stall error does not name the receiver and quiet sender: %v", err)
	}
}

// TestFaultyLinkStillDeliversExactlyOnce: drop/dup/reorder injection must
// not lose or duplicate frames as seen by the receiver.
func TestFaultyLinkStillDeliversExactlyOnce(t *testing.T) {
	p := testProgram(t)
	fc, err := faults.Parse("drop=0.3,dup=0.3,reorder=0.3,seed=99")
	if err != nil {
		t.Fatal(err)
	}
	cl, err := New(p, Config{NumNodes: 2, HeapPerNode: 4 << 20, Faults: &fc, RecvTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	const frames = 400
	for i := 0; i < frames; i++ {
		cl.Net.Send(Frame{From: 0, To: 1, Data: []byte{byte(i), byte(i >> 8)}})
	}
	got := make(map[int]int)
	for i := 0; i < frames; i++ {
		f, err := cl.Net.Recv(1)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		got[int(f.Data[0])|int(f.Data[1])<<8]++
	}
	for i := 0; i < frames; i++ {
		if got[i] != 1 {
			t.Fatalf("frame %d delivered %d times", i, got[i])
		}
	}
	st := cl.Net.Stats()
	if st.Drops == 0 || st.Dups == 0 || st.Deduped == 0 {
		t.Fatalf("injection had no effect: %+v", st)
	}
}

// TestCrashBlackHolesAndRestartRevives: frames to a crashed node vanish;
// a restarted node receives again on a fresh VM.
func TestCrashBlackHolesAndRestartRevives(t *testing.T) {
	p := testProgram(t)
	cl, err := New(p, Config{NumNodes: 2, HeapPerNode: 4 << 20, RecvTimeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	oldVM := cl.Nodes[1].VM
	cl.Net.Send(Frame{From: 0, To: 1, Data: []byte("pending")})
	cl.Net.Crash(1)
	cl.Net.Send(Frame{From: 0, To: 1, Data: []byte("void")})
	if !cl.Net.Crashed(1) {
		t.Fatal("node not marked crashed")
	}
	if err := cl.RestartNode(1); err != nil {
		t.Fatal(err)
	}
	if cl.Nodes[1].VM == oldVM {
		t.Fatal("restart did not build a fresh VM")
	}
	if cl.Restarts() != 1 {
		t.Fatalf("restarts = %d", cl.Restarts())
	}
	// Both the pre-crash queued frame and the black-holed frame are gone.
	if f, ok := cl.Net.TryRecv(1); ok {
		t.Fatalf("crashed node kept frame %q", f.Data)
	}
	cl.Net.Send(Frame{From: 0, To: 1, Data: []byte("alive")})
	f, err := cl.Net.Recv(1)
	if err != nil || string(f.Data) != "alive" {
		t.Fatalf("restarted node recv: %v %q", err, f.Data)
	}
	// The rebuilt VM still executes programs.
	v, err := cl.Nodes[1].Main.InvokeStatic("Work", "square", vm.I(9))
	if err != nil || int32(v) != 81 {
		t.Fatalf("restarted VM broken: %v %d", err, int32(v))
	}
}
