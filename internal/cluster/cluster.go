// Package cluster simulates the shared-nothing cluster the paper's Hyracks
// and GPS experiments run on: each node owns a private VM instance (its
// own managed heap, collector, and — for transformed programs — its own
// off-heap page store), and nodes exchange serialized byte frames through
// an in-process network. Per-node heap budgets, per-node collections, and
// the serialization boundary between nodes are therefore faithful; only
// the wire is simulated.
package cluster

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/ir"
	"repro/internal/obs"
	"repro/internal/vm"
)

// Node is one cluster machine: a VM plus its main worker thread.
type Node struct {
	ID   int
	VM   *vm.VM
	Main *vm.Thread
}

// Frame is one network message.
type Frame struct {
	From, To int
	Tag      string
	Data     []byte
}

// Network provides per-node mailboxes.
type Network struct {
	mu     sync.Mutex
	boxes  []chan Frame
	nBytes int64
}

// Send delivers a frame to its destination mailbox.
func (n *Network) Send(f Frame) {
	n.mu.Lock()
	n.nBytes += int64(len(f.Data))
	n.mu.Unlock()
	n.boxes[f.To] <- f
}

// Recv receives one frame addressed to node id.
func (n *Network) Recv(id int) Frame { return <-n.boxes[id] }

// BytesSent returns total bytes shuffled.
func (n *Network) BytesSent() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.nBytes
}

// Cluster is a set of nodes running the same program.
type Cluster struct {
	Nodes []*Node
	Net   *Network
}

// Config sizes the cluster.
type Config struct {
	NumNodes    int
	HeapPerNode int // per-node managed heap budget (-Xmx)
	RandSeed    int64
}

// New builds a cluster of NumNodes nodes, each with a private VM for prog.
func New(prog *ir.Program, cfg Config) (*Cluster, error) {
	if cfg.NumNodes <= 0 {
		cfg.NumNodes = 1
	}
	c := &Cluster{Net: &Network{}}
	for i := 0; i < cfg.NumNodes; i++ {
		m, err := vm.New(prog, vm.Config{HeapSize: cfg.HeapPerNode, RandSeed: cfg.RandSeed + int64(i)})
		if err != nil {
			return nil, fmt.Errorf("cluster: node %d: %w", i, err)
		}
		t, err := m.NewThread(nil)
		if err != nil {
			return nil, fmt.Errorf("cluster: node %d thread: %w", i, err)
		}
		c.Nodes = append(c.Nodes, &Node{ID: i, VM: m, Main: t})
		c.Net.boxes = append(c.Net.boxes, make(chan Frame, 1024))
	}
	return c, nil
}

// Close releases node threads.
func (c *Cluster) Close() {
	for _, n := range c.Nodes {
		n.Main.Close()
	}
}

// Stats aggregates per-node memory/GC statistics.
type Stats struct {
	GCTime      time.Duration // summed across nodes
	MaxHeapPeak int64         // worst node heap peak
	MaxNative   int64         // worst node native peak
	MaxTotal    int64         // worst node heap+native peak
	MinorGCs    int64
	FullGCs     int64
}

// Stats collects current counters from every node.
func (c *Cluster) Stats() Stats {
	var s Stats
	for _, n := range c.Nodes {
		hs := n.VM.Heap.Stats()
		s.GCTime += hs.GCTime
		s.MinorGCs += hs.MinorGCs
		s.FullGCs += hs.FullGCs
		total := hs.PeakUsed
		if hs.PeakUsed > s.MaxHeapPeak {
			s.MaxHeapPeak = hs.PeakUsed
		}
		if n.VM.RT != nil {
			ns := n.VM.RT.Stats()
			total += ns.PeakBytes
			if ns.PeakBytes > s.MaxNative {
				s.MaxNative = ns.PeakBytes
			}
		}
		if total > s.MaxTotal {
			s.MaxTotal = total
		}
	}
	return s
}

// ObsSnapshots returns every node's observability snapshot, indexed by
// node ID (each node's VM has a private registry).
func (c *Cluster) ObsSnapshots() []obs.Snapshot {
	out := make([]obs.Snapshot, len(c.Nodes))
	for i, n := range c.Nodes {
		out[i] = n.VM.Obs().Snapshot()
	}
	return out
}

// ParallelEach runs fn on every node concurrently and returns the first
// error.
func (c *Cluster) ParallelEach(fn func(*Node) error) error {
	errs := make(chan error, len(c.Nodes))
	var wg sync.WaitGroup
	for _, n := range c.Nodes {
		wg.Add(1)
		go func(n *Node) {
			defer wg.Done()
			errs <- fn(n)
		}(n)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
