// Package cluster simulates the shared-nothing cluster the paper's Hyracks
// and GPS experiments run on: each node owns a private VM instance (its
// own managed heap, collector, and — for transformed programs — its own
// off-heap page store), and nodes exchange serialized byte frames through
// an in-process network. Per-node heap budgets, per-node collections, and
// the serialization boundary between nodes are therefore faithful; only
// the wire is simulated.
//
// The wire is an unreliable one when fault injection is configured
// (internal/faults): frames can be dropped, duplicated, delayed, or
// reordered, and whole nodes can crash. The network compensates the way a
// real transport would — dropped delivery attempts are retried with capped
// exponential backoff (at-least-once), and every frame carries a per-link
// sequence number the receiver dedups on (exactly-once at the mailbox).
// Mailboxes are unbounded, so a slow consumer can never deadlock a sender;
// a genuinely stalled consumer is surfaced by a Recv timeout that names
// the silent link instead of hanging the whole run.
package cluster

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faults"
	"repro/internal/ir"
	"repro/internal/obs"
	"repro/internal/vm"
)

// Node is one cluster machine: a VM plus its main worker thread.
type Node struct {
	ID   int
	VM   *vm.VM
	Main *vm.Thread
}

// Frame is one network message.
type Frame struct {
	From, To int
	Tag      string
	Data     []byte

	// seq is the per-(From,To)-link sequence number stamped by Send; the
	// receiving mailbox dedups on (From, seq) so injected duplicates and
	// retry races collapse to exactly-once delivery.
	seq uint64
}

// Send retry policy for injected drops: capped exponential backoff, bounded
// attempts (the simulated link eventually succeeds even at drop=1 so tests
// cannot livelock).
const (
	maxSendAttempts = 64
	backoffBase     = 50 * time.Microsecond
	backoffCap      = 1 * time.Millisecond
)

// DefaultRecvTimeout bounds how long Recv waits before declaring the link
// stalled.
const DefaultRecvTimeout = 10 * time.Second

// mailbox is one node's unbounded receive queue. A single goroutine
// consumes each mailbox (the node's main loop); any goroutine may send.
type mailbox struct {
	mu      sync.Mutex
	queue   []Frame
	crashed bool
	seen    map[uint64]struct{} // (from, seq) keys already delivered
	fromCnt []int64             // frames delivered so far, per sender

	sig chan struct{} // capacity 1: "queue may be non-empty"
}

func (b *mailbox) dedupKey(f Frame) uint64 {
	return uint64(f.From+1)<<48 ^ f.seq
}

// NetStats counts the network's traffic and its injected misbehavior.
type NetStats struct {
	FramesSent      int64
	FramesDelivered int64
	BytesSent       int64
	Drops           int64 // delivery attempts lost to injection
	Retries         int64 // re-sends after a dropped attempt
	Dups            int64 // frames enqueued twice by injection
	Deduped         int64 // duplicate deliveries suppressed at the mailbox
	Reorders        int64 // frames delivered ahead of the queue
	Delays          int64 // frames held back by injected latency
	BlackHoled      int64 // frames sent to a crashed node
}

// Network provides per-node mailboxes with at-least-once delivery and
// receiver-side dedup.
type Network struct {
	boxes       []*mailbox
	inj         *faults.Injector // keyed points only; nil when disabled
	recvTimeout time.Duration

	seqMu sync.Mutex
	seqs  map[uint64]uint64 // (from,to) link -> last sequence number

	framesSent      atomic.Int64
	framesDelivered atomic.Int64
	bytesSent       atomic.Int64
	drops           atomic.Int64
	retries         atomic.Int64
	dups            atomic.Int64
	deduped         atomic.Int64
	reorders        atomic.Int64
	delays          atomic.Int64
	blackHoled      atomic.Int64
}

func newNetwork(nodes int, inj *faults.Injector, recvTimeout time.Duration) *Network {
	if recvTimeout <= 0 {
		recvTimeout = DefaultRecvTimeout
	}
	n := &Network{inj: inj, recvTimeout: recvTimeout, seqs: make(map[uint64]uint64)}
	for i := 0; i < nodes; i++ {
		n.boxes = append(n.boxes, &mailbox{
			seen:    make(map[uint64]struct{}),
			fromCnt: make([]int64, nodes),
			sig:     make(chan struct{}, 1),
		})
	}
	return n
}

func (n *Network) nextSeq(from, to int) uint64 {
	link := uint64(from)<<32 | uint64(uint32(to))
	n.seqMu.Lock()
	defer n.seqMu.Unlock()
	n.seqs[link]++
	return n.seqs[link]
}

// mix64 is the splitmix64 output function, used to derive per-frame fault
// keys that differ across attempts.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func frameKey(from, to int, seq uint64) uint64 {
	return mix64(uint64(from+1)<<40 ^ uint64(to+1)<<20 ^ seq)
}

// Send delivers a frame to its destination mailbox, surviving injected
// drops by retrying with capped exponential backoff. Sends to a crashed
// node are black-holed, as on a real network; the crash is surfaced to the
// application by the engine's recovery protocol, not by the transport.
func (n *Network) Send(f Frame) {
	f.seq = n.nextSeq(f.From, f.To)
	n.framesSent.Add(1)
	n.bytesSent.Add(int64(len(f.Data)))
	key := frameKey(f.From, f.To, f.seq)
	inj := n.inj
	if inj.FireKeyed(faults.NetDelay, key) {
		n.delays.Add(1)
		time.Sleep(inj.DelayKeyed(key))
	}
	// Each delivery attempt has its own fault key: a dropped attempt is
	// retried until one gets through (the ack/timeout/retry loop of a real
	// transport, collapsed into the sender).
	for attempt := 1; attempt < maxSendAttempts; attempt++ {
		if !inj.FireKeyed(faults.NetDrop, mix64(key^uint64(attempt))) {
			break
		}
		n.drops.Add(1)
		n.retries.Add(1)
		d := backoffBase << (attempt - 1)
		if d > backoffCap {
			d = backoffCap
		}
		time.Sleep(d)
	}
	copies := 1
	if inj.FireKeyed(faults.NetDup, key) {
		copies = 2
		n.dups.Add(1)
	}
	front := inj.FireKeyed(faults.NetReorder, key)
	bx := n.boxes[f.To]
	bx.mu.Lock()
	if bx.crashed {
		bx.mu.Unlock()
		n.blackHoled.Add(1)
		return
	}
	for c := 0; c < copies; c++ {
		if front && len(bx.queue) > 0 {
			n.reorders.Add(1)
			bx.queue = append([]Frame{f}, bx.queue...)
		} else {
			bx.queue = append(bx.queue, f)
		}
	}
	bx.mu.Unlock()
	select {
	case bx.sig <- struct{}{}:
	default:
	}
}

// Recv receives one frame addressed to node id, suppressing duplicate
// deliveries. It fails with a stall error — naming the receiver and the
// quietest sender link — if no frame arrives within the network's receive
// timeout, so a lost peer shows up as a diagnosable error instead of a
// deadlock.
func (n *Network) Recv(id int) (Frame, error) {
	bx := n.boxes[id]
	timer := time.NewTimer(n.recvTimeout)
	defer timer.Stop()
	for {
		bx.mu.Lock()
		for len(bx.queue) > 0 {
			f := bx.queue[0]
			bx.queue = bx.queue[1:]
			if _, dup := bx.seen[bx.dedupKey(f)]; dup {
				n.deduped.Add(1)
				continue
			}
			bx.seen[bx.dedupKey(f)] = struct{}{}
			bx.fromCnt[f.From]++
			bx.mu.Unlock()
			n.framesDelivered.Add(1)
			return f, nil
		}
		bx.mu.Unlock()
		select {
		case <-bx.sig:
		case <-timer.C:
			return Frame{}, n.stallError(id)
		}
	}
}

// stallError names the stalled receiver and the sender that has delivered
// the fewest frames to it — in a barrier protocol that is the missing peer.
func (n *Network) stallError(id int) error {
	bx := n.boxes[id]
	bx.mu.Lock()
	counts := append([]int64(nil), bx.fromCnt...)
	bx.mu.Unlock()
	quiet, min := -1, int64(1<<62)
	for from, c := range counts {
		if from != id && c < min {
			quiet, min = from, c
		}
	}
	return fmt.Errorf("cluster: node %d received no frame within %v (quietest link: node %d, %d frames delivered; per-sender counts %v)",
		id, n.recvTimeout, quiet, min, counts)
}

// TryRecv returns a pending frame without blocking; ok is false when the
// mailbox is empty. Used by recovery code to drain delivered-but-unconsumed
// frames into a checkpoint.
func (n *Network) TryRecv(id int) (Frame, bool) {
	bx := n.boxes[id]
	bx.mu.Lock()
	defer bx.mu.Unlock()
	for len(bx.queue) > 0 {
		f := bx.queue[0]
		bx.queue = bx.queue[1:]
		if _, dup := bx.seen[bx.dedupKey(f)]; dup {
			n.deduped.Add(1)
			continue
		}
		bx.seen[bx.dedupKey(f)] = struct{}{}
		bx.fromCnt[f.From]++
		n.framesDelivered.Add(1)
		return f, true
	}
	return Frame{}, false
}

// Crash marks a node dead: its pending frames are lost and subsequent
// sends to it are black-holed.
func (n *Network) Crash(id int) {
	bx := n.boxes[id]
	bx.mu.Lock()
	bx.crashed = true
	bx.queue = nil
	bx.mu.Unlock()
}

// Revive accepts deliveries for a restarted node again. The dedup history
// survives the crash (sequence numbers only ever grow, so stale retries
// from before the crash are still suppressed).
func (n *Network) Revive(id int) {
	bx := n.boxes[id]
	bx.mu.Lock()
	bx.crashed = false
	bx.mu.Unlock()
}

// Crashed reports whether the node's mailbox is marked dead.
func (n *Network) Crashed(id int) bool {
	bx := n.boxes[id]
	bx.mu.Lock()
	defer bx.mu.Unlock()
	return bx.crashed
}

// Stats returns a snapshot of the network counters.
func (n *Network) Stats() NetStats {
	return NetStats{
		FramesSent:      n.framesSent.Load(),
		FramesDelivered: n.framesDelivered.Load(),
		BytesSent:       n.bytesSent.Load(),
		Drops:           n.drops.Load(),
		Retries:         n.retries.Load(),
		Dups:            n.dups.Load(),
		Deduped:         n.deduped.Load(),
		Reorders:        n.reorders.Load(),
		Delays:          n.delays.Load(),
		BlackHoled:      n.blackHoled.Load(),
	}
}

// BytesSent returns total bytes shuffled.
func (n *Network) BytesSent() int64 { return n.bytesSent.Load() }

// NodeError tags an error with the cluster node it occurred on.
type NodeError struct {
	ID  int
	Err error
}

func (e *NodeError) Error() string { return fmt.Sprintf("node %d: %v", e.ID, e.Err) }

// Unwrap exposes the underlying error so errors.Is/As see through the tag
// (heap.ErrOutOfMemory classification in the engines depends on this).
func (e *NodeError) Unwrap() error { return e.Err }

// Cluster is a set of nodes running the same program.
type Cluster struct {
	Nodes []*Node
	Net   *Network

	prog    *ir.Program
	cfg     Config
	nodeInj []*faults.Injector // per-node counter-based injectors
	inj     *faults.Injector   // shared keyed injector (network, crash plan)

	// retired accumulates the stats of VMs replaced by RestartNode so a
	// crash does not erase the dead node's GC history from the books.
	retiredMu sync.Mutex
	retired   Stats
	restarts  int64
}

// Config sizes the cluster.
type Config struct {
	NumNodes    int
	HeapPerNode int // per-node managed heap budget (-Xmx)
	RandSeed    int64

	// Faults configures deterministic fault injection; nil or a disabled
	// config runs a perfectly reliable cluster. Each node's VM gets a
	// private injector derived with ForNode; the network shares one keyed
	// injector.
	Faults *faults.Config

	// RecvTimeout bounds how long Network.Recv waits before reporting a
	// stalled link (DefaultRecvTimeout when zero).
	RecvTimeout time.Duration
}

// New builds a cluster of NumNodes nodes, each with a private VM for prog.
func New(prog *ir.Program, cfg Config) (*Cluster, error) {
	if cfg.NumNodes <= 0 {
		cfg.NumNodes = 1
	}
	c := &Cluster{prog: prog, cfg: cfg}
	if cfg.Faults != nil && cfg.Faults.Enabled() {
		c.inj = faults.New(cfg.Faults)
		for i := 0; i < cfg.NumNodes; i++ {
			nc := cfg.Faults.ForNode(i)
			c.nodeInj = append(c.nodeInj, faults.New(&nc))
		}
	} else {
		c.nodeInj = make([]*faults.Injector, cfg.NumNodes)
	}
	c.Net = newNetwork(cfg.NumNodes, c.inj, cfg.RecvTimeout)
	for i := 0; i < cfg.NumNodes; i++ {
		n, err := c.newNode(i)
		if err != nil {
			return nil, err
		}
		c.Nodes = append(c.Nodes, n)
	}
	return c, nil
}

func (c *Cluster) newNode(id int) (*Node, error) {
	m, err := vm.New(c.prog, vm.Config{
		HeapSize: c.cfg.HeapPerNode,
		RandSeed: c.cfg.RandSeed + int64(id),
		Faults:   c.nodeInj[id],
	})
	if err != nil {
		return nil, fmt.Errorf("cluster: node %d: %w", id, err)
	}
	t, err := m.NewThread(nil)
	if err != nil {
		return nil, fmt.Errorf("cluster: node %d thread: %w", id, err)
	}
	return &Node{ID: id, VM: m, Main: t}, nil
}

// Injector returns the cluster's shared fault injector (nil when fault
// injection is disabled).
func (c *Cluster) Injector() *faults.Injector { return c.inj }

// CrashPlan returns the planned node crashes for an engine with the given
// number of recovery occasions (GPS supersteps, Hyracks phases).
func (c *Cluster) CrashPlan(occasions int) []faults.Crash {
	return c.inj.CrashPlan(occasions, len(c.Nodes))
}

// RestartNode replaces a crashed node with a fresh VM (empty heap, empty
// page store) and re-opens its mailbox. The dead VM's memory/GC statistics
// are folded into the cluster's retired books first, so aggregate stats
// span the whole run, not just the surviving incarnations.
func (c *Cluster) RestartNode(id int) error {
	old := c.Nodes[id]
	c.retiredMu.Lock()
	hs := old.VM.Heap.Stats()
	c.retired.GCTime += hs.GCTime
	c.retired.MinorGCs += hs.MinorGCs
	c.retired.FullGCs += hs.FullGCs
	c.restarts++
	c.retiredMu.Unlock()
	old.Main.Close()
	n, err := c.newNode(id)
	if err != nil {
		return err
	}
	c.Nodes[id] = n
	c.Net.Revive(id)
	return nil
}

// Restarts returns how many nodes have been rebuilt by RestartNode.
func (c *Cluster) Restarts() int64 {
	c.retiredMu.Lock()
	defer c.retiredMu.Unlock()
	return c.restarts
}

// Close releases node threads.
func (c *Cluster) Close() {
	for _, n := range c.Nodes {
		n.Main.Close()
	}
}

// Stats aggregates per-node memory/GC statistics.
type Stats struct {
	GCTime      time.Duration // summed across nodes (including retired VMs)
	MaxHeapPeak int64         // worst node heap peak
	MaxNative   int64         // worst node native peak
	MaxTotal    int64         // worst node heap+native peak
	MinorGCs    int64
	FullGCs     int64
}

// Stats collects current counters from every node.
func (c *Cluster) Stats() Stats {
	c.retiredMu.Lock()
	s := c.retired
	c.retiredMu.Unlock()
	for _, n := range c.Nodes {
		hs := n.VM.Heap.Stats()
		s.GCTime += hs.GCTime
		s.MinorGCs += hs.MinorGCs
		s.FullGCs += hs.FullGCs
		total := hs.PeakUsed
		if hs.PeakUsed > s.MaxHeapPeak {
			s.MaxHeapPeak = hs.PeakUsed
		}
		if n.VM.RT != nil {
			ns := n.VM.RT.Stats()
			total += ns.PeakBytes
			if ns.PeakBytes > s.MaxNative {
				s.MaxNative = ns.PeakBytes
			}
		}
		if total > s.MaxTotal {
			s.MaxTotal = total
		}
	}
	return s
}

// ObsSnapshots returns every node's observability snapshot, indexed by
// node ID (each node's VM has a private registry; a restarted node reports
// its current incarnation).
func (c *Cluster) ObsSnapshots() []obs.Snapshot {
	out := make([]obs.Snapshot, len(c.Nodes))
	for i, n := range c.Nodes {
		out[i] = n.VM.Obs().Snapshot()
	}
	return out
}

// ParallelEach runs fn on every node concurrently. Every failing node
// contributes to the returned error (errors.Join), each tagged with its
// node ID, so a multi-node failure is not reported as a single arbitrary
// winner.
func (c *Cluster) ParallelEach(fn func(*Node) error) error {
	errs := make([]error, len(c.Nodes))
	var wg sync.WaitGroup
	for _, n := range c.Nodes {
		wg.Add(1)
		go func(n *Node) {
			defer wg.Done()
			if err := fn(n); err != nil {
				errs[n.ID] = &NodeError{ID: n.ID, Err: err}
			}
		}(n)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// FirstNodeError extracts the lowest-ID NodeError from an error tree
// produced by ParallelEach (nil when err carries none).
func FirstNodeError(err error) *NodeError {
	var found *NodeError
	var walk func(error)
	walk = func(e error) {
		switch v := e.(type) {
		case nil:
		case *NodeError:
			if found == nil || v.ID < found.ID {
				found = v
			}
		default:
			if m, ok := e.(interface{ Unwrap() []error }); ok {
				for _, sub := range m.Unwrap() {
					walk(sub)
				}
			} else if u := errors.Unwrap(e); u != nil {
				walk(u)
			}
		}
	}
	walk(err)
	return found
}
