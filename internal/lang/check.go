package lang

import (
	"fmt"
	"sort"
)

// BuildHierarchy resolves the class/interface declarations of the given
// files into a Hierarchy: superclasses, interfaces, field layouts
// (superclass fields first, as required by the page-record layout of
// Figure 1), dispatch tables, and dense type IDs. An Object class must be
// present (the FJ stdlib provides one).
func BuildHierarchy(files ...*File) (*Hierarchy, error) {
	h := &Hierarchy{
		Classes: make(map[string]*Class),
		Ifaces:  make(map[string]*Iface),
	}
	decls := make(map[string]*ClassDecl)
	for _, f := range files {
		for _, i := range f.Ifaces {
			if _, dup := h.Ifaces[i.Name]; dup {
				return nil, fmt.Errorf("%s: duplicate interface %s", i.Pos, i.Name)
			}
			if _, dup := decls[i.Name]; dup {
				return nil, fmt.Errorf("%s: %s declared as both class and interface", i.Pos, i.Name)
			}
			h.Ifaces[i.Name] = &Iface{Name: i.Name, Decl: i, Methods: make(map[string]*Method)}
		}
		for _, c := range f.Classes {
			if _, dup := decls[c.Name]; dup {
				return nil, fmt.Errorf("%s: duplicate class %s", c.Pos, c.Name)
			}
			if _, dup := h.Ifaces[c.Name]; dup {
				return nil, fmt.Errorf("%s: %s declared as both class and interface", c.Pos, c.Name)
			}
			decls[c.Name] = c
			h.Classes[c.Name] = &Class{Name: c.Name, Decl: c, Methods: make(map[string]*Method)}
		}
	}
	if _, ok := h.Classes["Object"]; !ok {
		return nil, fmt.Errorf("no Object class declared (include the FJ stdlib)")
	}
	h.Object = h.Classes["Object"]
	h.String = h.Classes["String"]

	// Resolve interface method signatures.
	for _, name := range sortedIfaceNames(h.Ifaces) {
		iface := h.Ifaces[name]
		for _, md := range iface.Decl.Methods {
			if _, dup := iface.Methods[md.Name]; dup {
				return nil, fmt.Errorf("%s: duplicate method %s in interface %s", md.Pos, md.Name, name)
			}
			m, err := h.resolveSig(md)
			if err != nil {
				return nil, err
			}
			m.OwnerIface = iface
			iface.Methods[md.Name] = m
		}
		h.IfaceList = append(h.IfaceList, iface)
	}

	// Link supers and interfaces.
	for _, name := range sortedClassNames(decls) {
		c := h.Classes[name]
		d := c.Decl
		if name == "Object" {
			if d.Extends != "" {
				return nil, fmt.Errorf("%s: Object must not extend", d.Pos)
			}
		} else {
			superName := d.Extends
			if superName == "" {
				superName = "Object"
			}
			super, ok := h.Classes[superName]
			if !ok {
				return nil, fmt.Errorf("%s: class %s extends unknown class %s", d.Pos, name, superName)
			}
			c.Super = super
		}
		for _, in := range d.Implements {
			iface, ok := h.Ifaces[in]
			if !ok {
				return nil, fmt.Errorf("%s: class %s implements unknown interface %s", d.Pos, name, in)
			}
			c.Ifaces = append(c.Ifaces, iface)
		}
	}
	// Cycle detection + topological ordering (supers first).
	order, err := topoOrder(h, decls)
	if err != nil {
		return nil, err
	}
	h.ClassList = order
	for i, c := range order {
		c.ID = i
		if c.Super != nil {
			c.Super.Subs = append(c.Super.Subs, c)
		}
	}

	// Members and layout in topological order so super layouts exist.
	for _, c := range order {
		if err := h.resolveMembers(c); err != nil {
			return nil, err
		}
	}
	// Override and interface-conformance checks.
	for _, c := range order {
		if err := h.checkOverrides(c); err != nil {
			return nil, err
		}
	}
	return h, nil
}

func sortedIfaceNames(m map[string]*Iface) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func topoOrder(h *Hierarchy, decls map[string]*ClassDecl) ([]*Class, error) {
	var order []*Class
	state := make(map[*Class]int) // 0 unvisited, 1 visiting, 2 done
	var visit func(c *Class) error
	visit = func(c *Class) error {
		switch state[c] {
		case 1:
			return fmt.Errorf("inheritance cycle involving class %s", c.Name)
		case 2:
			return nil
		}
		state[c] = 1
		if c.Super != nil {
			if err := visit(c.Super); err != nil {
				return err
			}
		}
		state[c] = 2
		order = append(order, c)
		return nil
	}
	for _, name := range sortedClassNames(decls) {
		if err := visit(h.Classes[name]); err != nil {
			return nil, err
		}
	}
	return order, nil
}

func (h *Hierarchy) resolveSig(md *MethodDecl) (*Method, error) {
	m := &Method{
		Name: md.Name, Static: md.Static, IsCtor: md.IsCtor, Decl: md,
	}
	for _, p := range md.Params {
		t, err := h.typeOf(p.Type)
		if err != nil {
			return nil, err
		}
		if t == VoidType {
			return nil, fmt.Errorf("%s: void parameter", p.Pos)
		}
		m.Params = append(m.Params, t)
		m.ParamNames = append(m.ParamNames, p.Name)
	}
	ret, err := h.typeOf(md.Ret)
	if err != nil {
		return nil, err
	}
	m.Ret = ret
	return m, nil
}

func (h *Hierarchy) resolveMembers(c *Class) error {
	d := c.Decl
	// Fields. Layout: superclass fields first; each field aligned to its
	// size. The resulting offsets are shared between heap objects and page
	// records.
	off := 0
	if c.Super != nil {
		c.AllFields = append(c.AllFields, c.Super.AllFields...)
		off = c.Super.BodySize
	}
	seen := make(map[string]bool)
	for _, fd := range d.Fields {
		if seen[fd.Name] {
			return fmt.Errorf("%s: duplicate field %s in class %s", fd.Pos, fd.Name, c.Name)
		}
		seen[fd.Name] = true
		t, err := h.typeOf(fd.Type)
		if err != nil {
			return err
		}
		if t == VoidType {
			return fmt.Errorf("%s: void field", fd.Pos)
		}
		f := &Field{Name: fd.Name, Type: t, Owner: c, Static: fd.Static}
		if fd.Static {
			f.StaticIndex = h.NumStatics
			h.NumStatics++
			c.Statics = append(c.Statics, f)
			continue
		}
		if c.FindField(fd.Name) != nil {
			return fmt.Errorf("%s: field %s shadows a superclass field", fd.Pos, fd.Name)
		}
		sz := t.FieldSize()
		off = align(off, sz)
		f.Offset = off
		off += sz
		c.Fields = append(c.Fields, f)
		c.AllFields = append(c.AllFields, f)
	}
	c.BodySize = align(off, 8)

	// Methods.
	for _, md := range d.Methods {
		if _, dup := c.Methods[md.Name]; dup {
			return fmt.Errorf("%s: duplicate method %s in class %s", md.Pos, md.Name, c.Name)
		}
		m, err := h.resolveSig(md)
		if err != nil {
			return err
		}
		m.Owner = c
		c.Methods[md.Name] = m
	}
	if d.Ctor != nil {
		m, err := h.resolveSig(d.Ctor)
		if err != nil {
			return err
		}
		m.Owner = c
		m.Ret = VoidType
		c.Ctor = m
	}
	return nil
}

func align(off, sz int) int {
	if sz <= 1 {
		return off
	}
	rem := off % sz
	if rem != 0 {
		off += sz - rem
	}
	return off
}

func sameSig(a, b *Method) bool {
	if len(a.Params) != len(b.Params) || !a.Ret.Equals(b.Ret) {
		return false
	}
	for i := range a.Params {
		if !a.Params[i].Equals(b.Params[i]) {
			return false
		}
	}
	return true
}

func (h *Hierarchy) checkOverrides(c *Class) error {
	for name, m := range c.Methods {
		if c.Super == nil {
			continue
		}
		if sup := c.Super.Resolve(name); sup != nil {
			if m.Static != sup.Static {
				return fmt.Errorf("method %s.%s changes staticness of inherited method", c.Name, name)
			}
			if !m.Static && !sameSig(m, sup) {
				return fmt.Errorf("method %s.%s overrides %s with a different signature", c.Name, name, sup.Sig())
			}
		}
	}
	for _, iface := range c.Ifaces {
		for name, im := range iface.Methods {
			impl := c.Resolve(name)
			if impl == nil {
				return fmt.Errorf("class %s does not implement %s.%s", c.Name, iface.Name, name)
			}
			if impl.Static {
				return fmt.Errorf("class %s implements %s.%s with a static method", c.Name, iface.Name, name)
			}
			if !sameSig(impl, im) {
				return fmt.Errorf("class %s implements %s.%s with a different signature", c.Name, iface.Name, name)
			}
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Body checking

// Check type-checks every method body in the hierarchy, annotating the AST
// with types and resolved members.
func Check(h *Hierarchy) error {
	for _, c := range h.ClassList {
		if c.Ctor != nil {
			if err := h.checkBody(c, c.Ctor); err != nil {
				return err
			}
		}
		names := make([]string, 0, len(c.Methods))
		for n := range c.Methods {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			if err := h.checkBody(c, c.Methods[n]); err != nil {
				return err
			}
		}
	}
	return nil
}

// scope is a lexical scope of local variables.
type scope struct {
	parent *scope
	vars   map[string]*Type
}

func (s *scope) lookup(name string) *Type {
	for x := s; x != nil; x = x.parent {
		if t, ok := x.vars[name]; ok {
			return t
		}
	}
	return nil
}

func (s *scope) declare(name string, t *Type) bool {
	if _, dup := s.vars[name]; dup {
		return false
	}
	s.vars[name] = t
	return true
}

type checker struct {
	h       *Hierarchy
	cls     *Class
	method  *Method
	loop    int
	hasThis bool
}

func (h *Hierarchy) checkBody(c *Class, m *Method) error {
	if m.Decl == nil || m.Decl.Body == nil {
		return nil
	}
	ck := &checker{h: h, cls: c, method: m, hasThis: !m.Static}
	sc := &scope{vars: make(map[string]*Type)}
	for i, pn := range m.ParamNames {
		if !sc.declare(pn, m.Params[i]) {
			return fmt.Errorf("%s: duplicate parameter %s", m.Decl.Pos, pn)
		}
	}
	return ck.stmt(m.Decl.Body, sc)
}

func (ck *checker) errf(p Pos, format string, args ...any) error {
	return fmt.Errorf("%s: in %s: %s", p, ck.method.Sig(), fmt.Sprintf(format, args...))
}

func (ck *checker) stmt(s Stmt, sc *scope) error {
	switch st := s.(type) {
	case *BlockStmt:
		inner := &scope{parent: sc, vars: make(map[string]*Type)}
		for _, x := range st.Stmts {
			if err := ck.stmt(x, inner); err != nil {
				return err
			}
		}
		return nil
	case *VarDeclStmt:
		t, err := ck.h.typeOf(st.Type)
		if err != nil {
			return err
		}
		if t == VoidType {
			return ck.errf(st.Pos, "void variable %s", st.Name)
		}
		st.T = t
		if st.Init != nil {
			it, err := ck.expr(st.Init, sc)
			if err != nil {
				return err
			}
			coerced, err := ck.coerce(st.Init, it, t)
			if err != nil {
				return ck.errf(st.Pos, "cannot initialize %s %s with %s", t, st.Name, it)
			}
			st.Init = coerced
		}
		if !sc.declare(st.Name, t) {
			return ck.errf(st.Pos, "duplicate local %s", st.Name)
		}
		return nil
	case *AssignStmt:
		tt, err := ck.lvalue(st.Target, sc)
		if err != nil {
			return err
		}
		vt, err := ck.expr(st.Value, sc)
		if err != nil {
			return err
		}
		coerced, err := ck.coerce(st.Value, vt, tt)
		if err != nil {
			return ck.errf(st.Pos, "cannot assign %s to %s", vt, tt)
		}
		st.Value = coerced
		return nil
	case *IfStmt:
		if err := ck.boolCond(st.Cond, sc); err != nil {
			return err
		}
		if err := ck.stmt(st.Then, sc); err != nil {
			return err
		}
		if st.Else != nil {
			return ck.stmt(st.Else, sc)
		}
		return nil
	case *WhileStmt:
		if err := ck.boolCond(st.Cond, sc); err != nil {
			return err
		}
		ck.loop++
		defer func() { ck.loop-- }()
		return ck.stmt(st.Body, sc)
	case *ForStmt:
		inner := &scope{parent: sc, vars: make(map[string]*Type)}
		if st.Init != nil {
			if err := ck.stmt(st.Init, inner); err != nil {
				return err
			}
		}
		if st.Cond != nil {
			if err := ck.boolCond(st.Cond, inner); err != nil {
				return err
			}
		}
		if st.Post != nil {
			if err := ck.stmt(st.Post, inner); err != nil {
				return err
			}
		}
		ck.loop++
		defer func() { ck.loop-- }()
		return ck.stmt(st.Body, inner)
	case *ReturnStmt:
		want := ck.method.Ret
		if st.Value == nil {
			if want != VoidType {
				return ck.errf(st.Pos, "missing return value (want %s)", want)
			}
			return nil
		}
		if want == VoidType {
			return ck.errf(st.Pos, "returning a value from a void method")
		}
		vt, err := ck.expr(st.Value, sc)
		if err != nil {
			return err
		}
		coerced, err := ck.coerce(st.Value, vt, want)
		if err != nil {
			return ck.errf(st.Pos, "cannot return %s as %s", vt, want)
		}
		st.Value = coerced
		return nil
	case *BreakStmt:
		if ck.loop == 0 {
			return ck.errf(st.Pos, "break outside loop")
		}
		return nil
	case *ContinueStmt:
		if ck.loop == 0 {
			return ck.errf(st.Pos, "continue outside loop")
		}
		return nil
	case *ExprStmt:
		_, err := ck.expr(st.X, sc)
		return err
	case *SyncStmt:
		lt, err := ck.expr(st.Lock, sc)
		if err != nil {
			return err
		}
		if !lt.IsRef() || lt.Kind == TNull {
			return ck.errf(st.Pos, "synchronized lock must be a reference, got %s", lt)
		}
		return ck.stmt(st.Body, sc)
	}
	return fmt.Errorf("unhandled statement %T", s)
}

func (ck *checker) boolCond(e Expr, sc *scope) error {
	t, err := ck.expr(e, sc)
	if err != nil {
		return err
	}
	if t != BoolType {
		return fmt.Errorf("condition must be boolean, got %s", t)
	}
	return nil
}

// lvalue checks an assignment target and returns its type.
func (ck *checker) lvalue(e Expr, sc *scope) (*Type, error) {
	switch t := e.(type) {
	case *IdentExpr:
		return ck.expr(e, sc)
	case *FieldExpr:
		tt, err := ck.expr(e, sc)
		if err != nil {
			return nil, err
		}
		if t.IsLen {
			return nil, ck.errf(t.Pos, "cannot assign to array length")
		}
		return tt, nil
	case *IndexExpr:
		return ck.expr(e, sc)
	}
	return nil, fmt.Errorf("invalid assignment target %T", e)
}

// numericRank orders numeric types for widening: byte < int < long < double.
func numericRank(t *Type) int {
	switch t.Kind {
	case TByte:
		return 0
	case TInt:
		return 1
	case TLong:
		return 2
	case TDouble:
		return 3
	}
	return -1
}

// coerce checks that a value of type src can flow into a slot of type dst,
// wrapping e in a synthetic widening cast when a numeric conversion is
// needed. It returns the (possibly wrapped) expression.
func (ck *checker) coerce(e Expr, src, dst *Type) (Expr, error) {
	if src.Equals(dst) {
		return e, nil
	}
	if src.IsNumeric() && dst.IsNumeric() && numericRank(src) < numericRank(dst) {
		c := &CastExpr{Pos: Pos{}, X: e, TargetT: dst}
		c.setType(dst)
		return c, nil
	}
	if dst.IsRef() && src.Kind == TNull {
		return e, nil
	}
	if ck.h.assignableRef(dst, src) {
		return e, nil
	}
	return nil, fmt.Errorf("type mismatch %s -> %s", src, dst)
}

func (ck *checker) expr(e Expr, sc *scope) (*Type, error) {
	t, err := ck.exprInner(e, sc)
	if err != nil {
		return nil, err
	}
	e.setType(t)
	return t, nil
}

func (ck *checker) exprInner(e Expr, sc *scope) (*Type, error) {
	switch x := e.(type) {
	case *IntLit:
		return IntType, nil
	case *LongLit:
		return LongType, nil
	case *DoubleLit:
		return DoubleType, nil
	case *BoolLit:
		return BoolType, nil
	case *NullLit:
		return NullType, nil
	case *StringLit:
		if ck.h.String == nil {
			return nil, ck.errf(x.Pos, "string literal requires a String class")
		}
		return ClassType("String"), nil
	case *ThisExpr:
		if !ck.hasThis {
			return nil, ck.errf(x.Pos, "this in static context")
		}
		return ClassType(ck.cls.Name), nil
	case *IdentExpr:
		if t := sc.lookup(x.Name); t != nil {
			return t, nil
		}
		return nil, ck.errf(x.Pos, "unknown variable %s", x.Name)
	case *FieldExpr:
		return ck.fieldExpr(x, sc)
	case *IndexExpr:
		at, err := ck.expr(x.X, sc)
		if err != nil {
			return nil, err
		}
		if at.Kind != TArray {
			return nil, ck.errf(x.Pos, "indexing non-array type %s", at)
		}
		it, err := ck.expr(x.Index, sc)
		if err != nil {
			return nil, err
		}
		if !it.IsIntegral() || it.Kind == TLong {
			return nil, ck.errf(x.Pos, "array index must be int, got %s", it)
		}
		return at.Elem, nil
	case *CallExpr:
		return ck.callExpr(x, sc)
	case *NewExpr:
		return ck.newExpr(x, sc)
	case *NewArrayExpr:
		et, err := ck.h.typeOf(x.Elem)
		if err != nil {
			return nil, err
		}
		x.ElemT = et
		lt, err := ck.expr(x.Len, sc)
		if err != nil {
			return nil, err
		}
		if lt != IntType && lt != ByteType {
			return nil, ck.errf(x.Pos, "array length must be int, got %s", lt)
		}
		return ArrayOf(et), nil
	case *UnaryExpr:
		t, err := ck.expr(x.X, sc)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case TokMinus:
			if !t.IsNumeric() {
				return nil, ck.errf(x.Pos, "negating non-numeric %s", t)
			}
			if t.Kind == TByte {
				return IntType, nil
			}
			return t, nil
		case TokNot:
			if t != BoolType {
				return nil, ck.errf(x.Pos, "! on non-boolean %s", t)
			}
			return BoolType, nil
		}
		return nil, ck.errf(x.Pos, "bad unary operator")
	case *BinaryExpr:
		return ck.binaryExpr(x, sc)
	case *InstanceOfExpr:
		t, err := ck.expr(x.X, sc)
		if err != nil {
			return nil, err
		}
		if !t.IsRef() {
			return nil, ck.errf(x.Pos, "instanceof on non-reference %s", t)
		}
		tt, err := ck.h.typeOf(x.Target)
		if err != nil {
			return nil, err
		}
		if !tt.IsRef() {
			return nil, ck.errf(x.Pos, "instanceof target must be a reference type")
		}
		x.TargetT = tt
		return BoolType, nil
	case *CastExpr:
		t, err := ck.expr(x.X, sc)
		if err != nil {
			return nil, err
		}
		if x.TargetT == nil {
			tt, err := ck.h.typeOf(x.Target)
			if err != nil {
				return nil, err
			}
			x.TargetT = tt
		}
		tt := x.TargetT
		if t.IsNumeric() && tt.IsNumeric() {
			return tt, nil
		}
		if t.IsRef() && tt.IsRef() && tt.Kind != TNull {
			return tt, nil
		}
		return nil, ck.errf(x.Pos, "invalid cast from %s to %s", t, tt)
	}
	return nil, fmt.Errorf("unhandled expression %T", e)
}

func (ck *checker) fieldExpr(x *FieldExpr, sc *scope) (*Type, error) {
	// Static field: ClassName.field where ClassName is not a local.
	if id, ok := x.X.(*IdentExpr); ok && sc.lookup(id.Name) == nil {
		cls := ck.h.Class(id.Name)
		if cls == nil {
			return nil, ck.errf(x.Pos, "unknown variable or class %s", id.Name)
		}
		f := cls.FindStatic(x.Name)
		if f == nil {
			return nil, ck.errf(x.Pos, "class %s has no static field %s", id.Name, x.Name)
		}
		x.ClassName = id.Name
		x.X = nil
		x.Resolved = f
		return f.Type, nil
	}
	rt, err := ck.expr(x.X, sc)
	if err != nil {
		return nil, err
	}
	if rt.Kind == TArray {
		if x.Name != "length" {
			return nil, ck.errf(x.Pos, "arrays have no field %s", x.Name)
		}
		x.IsLen = true
		return IntType, nil
	}
	if rt.Kind != TClass {
		return nil, ck.errf(x.Pos, "field access on non-class type %s", rt)
	}
	cls := ck.h.Class(rt.Name)
	f := cls.FindField(x.Name)
	if f == nil {
		return nil, ck.errf(x.Pos, "class %s has no field %s", rt.Name, x.Name)
	}
	x.Resolved = f
	return f.Type, nil
}

func (ck *checker) checkArgs(pos Pos, m *Method, args []Expr, sc *scope) ([]Expr, error) {
	if len(args) != len(m.Params) {
		return nil, ck.errf(pos, "%s expects %d arguments, got %d", m.Sig(), len(m.Params), len(args))
	}
	out := make([]Expr, len(args))
	for i, a := range args {
		at, err := ck.expr(a, sc)
		if err != nil {
			return nil, err
		}
		c, err := ck.coerce(a, at, m.Params[i])
		if err != nil {
			return nil, ck.errf(pos, "argument %d of %s: cannot pass %s as %s", i+1, m.Sig(), at, m.Params[i])
		}
		out[i] = c
	}
	return out, nil
}

func (ck *checker) callExpr(x *CallExpr, sc *scope) (*Type, error) {
	// Rewrite Ident receivers that are class names into static calls.
	if id, ok := x.Recv.(*IdentExpr); ok && sc.lookup(id.Name) == nil {
		x.ClassName = id.Name
		x.Recv = nil
	}
	if x.ClassName == "Sys" {
		return ck.sysCall(x, sc)
	}
	if x.ClassName != "" {
		cls := ck.h.Class(x.ClassName)
		if cls == nil {
			return nil, ck.errf(x.Pos, "unknown variable or class %s", x.ClassName)
		}
		var m *Method
		for c := cls; c != nil; c = c.Super {
			if mm, ok := c.Methods[x.Method]; ok {
				m = mm
				break
			}
		}
		if m == nil || !m.Static {
			return nil, ck.errf(x.Pos, "class %s has no static method %s", x.ClassName, x.Method)
		}
		args, err := ck.checkArgs(x.Pos, m, x.Args, sc)
		if err != nil {
			return nil, err
		}
		x.Args = args
		x.Resolved = m
		return m.Ret, nil
	}
	rt, err := ck.expr(x.Recv, sc)
	if err != nil {
		return nil, err
	}
	var m *Method
	switch rt.Kind {
	case TClass:
		m = ck.h.Class(rt.Name).Resolve(x.Method)
	case TIface:
		m = ck.h.Iface(rt.Name).LookupIfaceMethod(x.Method)
	case TArray:
		return nil, ck.errf(x.Pos, "method call on array type %s", rt)
	default:
		return nil, ck.errf(x.Pos, "method call on non-reference %s", rt)
	}
	if m == nil {
		return nil, ck.errf(x.Pos, "type %s has no method %s", rt, x.Method)
	}
	if m.Static {
		return nil, ck.errf(x.Pos, "instance call to static method %s", m.Sig())
	}
	args, err := ck.checkArgs(x.Pos, m, x.Args, sc)
	if err != nil {
		return nil, err
	}
	x.Args = args
	x.Resolved = m
	return m.Ret, nil
}

// sysCall checks builtin Sys.* intrinsics.
func (ck *checker) sysCall(x *CallExpr, sc *scope) (*Type, error) {
	argTypes := make([]*Type, len(x.Args))
	for i, a := range x.Args {
		t, err := ck.expr(a, sc)
		if err != nil {
			return nil, err
		}
		argTypes[i] = t
	}
	need := func(n int) error {
		if len(x.Args) != n {
			return ck.errf(x.Pos, "Sys.%s expects %d arguments, got %d", x.Method, n, len(x.Args))
		}
		return nil
	}
	x.Intrinsic = x.Method
	switch x.Method {
	case "print", "println":
		if err := need(1); err != nil {
			return nil, err
		}
		return VoidType, nil
	case "sqrt", "abs", "exp", "log":
		if err := need(1); err != nil {
			return nil, err
		}
		c, err := ck.coerce(x.Args[0], argTypes[0], DoubleType)
		if err != nil {
			return nil, ck.errf(x.Pos, "Sys.%s needs a double argument", x.Method)
		}
		x.Args[0] = c
		return DoubleType, nil
	case "rand":
		if err := need(1); err != nil {
			return nil, err
		}
		if argTypes[0] != IntType {
			return nil, ck.errf(x.Pos, "Sys.rand needs an int bound")
		}
		return IntType, nil
	case "arraycopy":
		if err := need(5); err != nil {
			return nil, err
		}
		if argTypes[0].Kind != TArray || !argTypes[0].Equals(argTypes[2]) {
			return nil, ck.errf(x.Pos, "Sys.arraycopy needs two arrays of the same type")
		}
		for _, i := range []int{1, 3, 4} {
			if argTypes[i] != IntType {
				return nil, ck.errf(x.Pos, "Sys.arraycopy positions must be int")
			}
		}
		return VoidType, nil
	case "release":
		// §3.6: hint that a large (oversize-paged) data structure is dead
		// before its iteration ends — e.g. the old array after a resize.
		// No-op in P; early oversize-page release in P'.
		if err := need(1); err != nil {
			return nil, err
		}
		if !argTypes[0].IsRef() {
			return nil, ck.errf(x.Pos, "Sys.release needs a reference")
		}
		return VoidType, nil
	case "iterStart", "iterEnd":
		// Iteration markers (§3.6): no-ops in P, page-manager push/pop in
		// P'. Frameworks usually place these from the control path; data
		// code may also mark nested iterations directly.
		if err := need(0); err != nil {
			return nil, err
		}
		return VoidType, nil
	}
	return nil, ck.errf(x.Pos, "unknown builtin Sys.%s", x.Method)
}

func (ck *checker) newExpr(x *NewExpr, sc *scope) (*Type, error) {
	cls := ck.h.Class(x.Class)
	if cls == nil {
		if ck.h.Iface(x.Class) != nil {
			return nil, ck.errf(x.Pos, "cannot instantiate interface %s", x.Class)
		}
		return nil, ck.errf(x.Pos, "unknown class %s", x.Class)
	}
	x.Cls = cls
	if cls.Ctor == nil {
		if len(x.Args) != 0 {
			return nil, ck.errf(x.Pos, "class %s has no constructor but arguments were given", x.Class)
		}
		return ClassType(x.Class), nil
	}
	args, err := ck.checkArgs(x.Pos, cls.Ctor, x.Args, sc)
	if err != nil {
		return nil, err
	}
	x.Args = args
	x.Ctor = cls.Ctor
	return ClassType(x.Class), nil
}

func (ck *checker) binaryExpr(x *BinaryExpr, sc *scope) (*Type, error) {
	lt, err := ck.expr(x.X, sc)
	if err != nil {
		return nil, err
	}
	rt, err := ck.expr(x.Y, sc)
	if err != nil {
		return nil, err
	}
	promote := func() (*Type, error) {
		if !lt.IsNumeric() || !rt.IsNumeric() {
			return nil, ck.errf(x.Pos, "operator %s needs numeric operands, got %s and %s", x.Op, lt, rt)
		}
		r := numericRank(lt)
		if numericRank(rt) > r {
			r = numericRank(rt)
		}
		if r < 1 {
			r = 1 // byte op byte promotes to int, as in Java
		}
		var t *Type
		switch r {
		case 1:
			t = IntType
		case 2:
			t = LongType
		default:
			t = DoubleType
		}
		cx, err := ck.coerce(x.X, lt, t)
		if err != nil {
			return nil, err
		}
		cy, err := ck.coerce(x.Y, rt, t)
		if err != nil {
			return nil, err
		}
		x.X, x.Y = cx, cy
		return t, nil
	}
	switch x.Op {
	case TokPlus, TokMinus, TokStar, TokSlash:
		return promote()
	case TokPercent:
		t, err := promote()
		if err != nil {
			return nil, err
		}
		if t == DoubleType {
			return nil, ck.errf(x.Pos, "%% needs integral operands")
		}
		return t, nil
	case TokAnd, TokOr, TokCaret:
		t, err := promote()
		if err != nil {
			return nil, err
		}
		if t == DoubleType {
			return nil, ck.errf(x.Pos, "bitwise operator needs integral operands")
		}
		return t, nil
	case TokShl, TokShr:
		if !lt.IsIntegral() || !rt.IsIntegral() || rt.Kind == TLong {
			return nil, ck.errf(x.Pos, "shift needs integral operands with int shift count")
		}
		if lt.Kind == TByte {
			c, _ := ck.coerce(x.X, lt, IntType)
			x.X = c
			return IntType, nil
		}
		return lt, nil
	case TokLt, TokLe, TokGt, TokGe:
		if _, err := promote(); err != nil {
			return nil, err
		}
		return BoolType, nil
	case TokEq, TokNe:
		if lt.IsNumeric() && rt.IsNumeric() {
			if _, err := promote(); err != nil {
				return nil, err
			}
			return BoolType, nil
		}
		if lt == BoolType && rt == BoolType {
			return BoolType, nil
		}
		if lt.IsRef() && rt.IsRef() {
			return BoolType, nil
		}
		return nil, ck.errf(x.Pos, "cannot compare %s and %s", lt, rt)
	case TokAndAnd, TokOrOr:
		if lt != BoolType || rt != BoolType {
			return nil, ck.errf(x.Pos, "logical operator needs boolean operands")
		}
		return BoolType, nil
	}
	return nil, ck.errf(x.Pos, "bad binary operator %s", x.Op)
}
