package lang

// This file defines the FJ abstract syntax tree. Expression nodes carry a
// Type field filled in by the checker; the lowering pass in internal/lower
// relies on those annotations.

// File is a parsed compilation unit: a list of class and interface
// declarations.
type File struct {
	Name    string
	Classes []*ClassDecl
	Ifaces  []*IfaceDecl
}

// ClassDecl is a class declaration.
type ClassDecl struct {
	Pos        Pos
	Name       string
	Extends    string   // "" means Object (except for Object itself)
	Implements []string // interface names
	Fields     []*FieldDecl
	Methods    []*MethodDecl
	Ctor       *MethodDecl // nil means implicit default constructor
}

// IfaceDecl is an interface declaration. Interfaces declare method
// signatures only (bodies are nil).
type IfaceDecl struct {
	Pos     Pos
	Name    string
	Methods []*MethodDecl
}

// FieldDecl is a field declaration inside a class.
type FieldDecl struct {
	Pos    Pos
	Name   string
	Type   TypeExpr
	Static bool
}

// MethodDecl is a method, constructor (Name == class name, IsCtor true), or
// interface method signature (Body == nil).
type MethodDecl struct {
	Pos    Pos
	Name   string
	Static bool
	IsCtor bool
	Params []Param
	Ret    TypeExpr // void when Ret.Kind == TVoid
	Body   *BlockStmt
}

// Param is a formal parameter.
type Param struct {
	Pos  Pos
	Name string
	Type TypeExpr
}

// TypeExpr is a syntactic type: a primitive or named base plus array depth.
type TypeExpr struct {
	Pos  Pos
	Kind TypeKind // TBool..TDouble, TVoid, or TClass (named)
	Name string   // class/interface name when Kind == TClass
	Dims int      // number of [] suffixes
}

// ---------------------------------------------------------------------------
// Statements

// Stmt is implemented by all statement nodes.
type Stmt interface{ stmtNode() }

// BlockStmt is { stmts... }.
type BlockStmt struct {
	Pos   Pos
	Stmts []Stmt
}

// VarDeclStmt declares a local: T x = init; init may be nil.
type VarDeclStmt struct {
	Pos  Pos
	Name string
	Type TypeExpr
	Init Expr
	// T is the resolved declared type (set by the checker).
	T *Type
}

// AssignStmt assigns to an lvalue (IdentExpr, FieldExpr, or IndexExpr).
type AssignStmt struct {
	Pos    Pos
	Target Expr
	Value  Expr
}

// IfStmt is if (Cond) Then else Else; Else may be nil.
type IfStmt struct {
	Pos  Pos
	Cond Expr
	Then Stmt
	Else Stmt
}

// WhileStmt is while (Cond) Body.
type WhileStmt struct {
	Pos  Pos
	Cond Expr
	Body Stmt
}

// ForStmt is for (Init; Cond; Post) Body; any part may be nil.
type ForStmt struct {
	Pos  Pos
	Init Stmt // VarDeclStmt, AssignStmt, or ExprStmt
	Cond Expr
	Post Stmt // AssignStmt or ExprStmt
	Body Stmt
}

// ReturnStmt is return [Value];.
type ReturnStmt struct {
	Pos   Pos
	Value Expr // nil for void return
}

// BreakStmt is break;.
type BreakStmt struct{ Pos Pos }

// ContinueStmt is continue;.
type ContinueStmt struct{ Pos Pos }

// ExprStmt evaluates a call expression for effect.
type ExprStmt struct {
	Pos Pos
	X   Expr
}

// SyncStmt is synchronized (Lock) Body.
type SyncStmt struct {
	Pos  Pos
	Lock Expr
	Body *BlockStmt
}

func (*BlockStmt) stmtNode()    {}
func (*VarDeclStmt) stmtNode()  {}
func (*AssignStmt) stmtNode()   {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*ForStmt) stmtNode()      {}
func (*ReturnStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*ExprStmt) stmtNode()     {}
func (*SyncStmt) stmtNode()     {}

// ---------------------------------------------------------------------------
// Expressions

// Expr is implemented by all expression nodes. T is set by the checker.
type Expr interface {
	exprNode()
	// Type returns the checked static type (nil before checking).
	Type() *Type
	setType(*Type)
}

type exprBase struct{ t *Type }

func (e *exprBase) exprNode()       {}
func (e *exprBase) Type() *Type     { return e.t }
func (e *exprBase) setType(t *Type) { e.t = t }

// IntLit is an int literal.
type IntLit struct {
	exprBase
	Pos Pos
	Val int32
}

// LongLit is a long literal (suffix L).
type LongLit struct {
	exprBase
	Pos Pos
	Val int64
}

// DoubleLit is a double literal.
type DoubleLit struct {
	exprBase
	Pos Pos
	Val float64
}

// BoolLit is true or false.
type BoolLit struct {
	exprBase
	Pos Pos
	Val bool
}

// NullLit is null.
type NullLit struct {
	exprBase
	Pos Pos
}

// StringLit is a string literal; lowered to an interned String record.
type StringLit struct {
	exprBase
	Pos Pos
	Val string
}

// IdentExpr names a local variable or parameter. The checker may rewrite a
// bare identifier naming a class (in static calls) before this is reached.
type IdentExpr struct {
	exprBase
	Pos  Pos
	Name string
}

// ThisExpr is this.
type ThisExpr struct {
	exprBase
	Pos Pos
}

// FieldExpr is X.Name, including the pseudo-field arr.length (IsLen set by
// the checker). For static fields X is nil and ClassName is set.
type FieldExpr struct {
	exprBase
	Pos       Pos
	X         Expr
	Name      string
	ClassName string // static field access when non-empty
	IsLen     bool
	// Resolved is the field this access binds to (set by the checker; nil
	// for arr.length).
	Resolved *Field
}

// IndexExpr is X[Index].
type IndexExpr struct {
	exprBase
	Pos   Pos
	X     Expr
	Index Expr
}

// CallExpr is a method call. For instance calls Recv is non-nil; for static
// calls ClassName is set (including builtin classes such as Sys).
type CallExpr struct {
	exprBase
	Pos       Pos
	Recv      Expr
	ClassName string
	Method    string
	Args      []Expr
	// Resolved is the statically bound method (set by the checker). For
	// virtual calls it is the declaration found on the receiver's static
	// type; dispatch happens at run time. Nil for intrinsics.
	Resolved *Method
	// Intrinsic is the builtin name for Sys.* calls (e.g. "print").
	Intrinsic string
}

// NewExpr is new C(args).
type NewExpr struct {
	exprBase
	Pos   Pos
	Class string
	Args  []Expr
	// Cls and Ctor are set by the checker; Ctor is nil for the implicit
	// default constructor.
	Cls  *Class
	Ctor *Method
}

// NewArrayExpr is new T[len] with optional extra dims: new T[len][][]...
type NewArrayExpr struct {
	exprBase
	Pos  Pos
	Elem TypeExpr // element type including trailing empty dims
	Len  Expr
	// ElemT is the resolved element type (set by the checker).
	ElemT *Type
}

// UnaryExpr is -X or !X.
type UnaryExpr struct {
	exprBase
	Pos Pos
	Op  TokKind // TokMinus or TokNot
	X   Expr
}

// BinaryExpr is X op Y. && and || short-circuit.
type BinaryExpr struct {
	exprBase
	Pos Pos
	Op  TokKind
	X   Expr
	Y   Expr
}

// InstanceOfExpr is X instanceof Target.
type InstanceOfExpr struct {
	exprBase
	Pos    Pos
	X      Expr
	Target TypeExpr
	// TargetT is the resolved target type (set by the checker).
	TargetT *Type
}

// CastExpr is (Target) X — a checked reference cast or a numeric
// conversion.
type CastExpr struct {
	exprBase
	Pos    Pos
	Target TypeExpr
	X      Expr
	// TargetT is the resolved target type (set by the checker). Synthetic
	// widening casts inserted by the checker have a zero Target and set
	// TargetT directly.
	TargetT *Type
}
