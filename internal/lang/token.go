// Package lang implements the frontend for FJ, the small statically typed
// object-oriented language in which the data paths of the benchmark
// frameworks are written. FJ plays the role Java plays in the FACADE paper:
// programs are parsed, type-checked, lowered to the register IR in
// internal/ir, and either executed directly against the managed heap or
// first rewritten by the FACADE transform in internal/core.
//
// FJ is a Java subset: classes with single inheritance, interfaces, static
// and instance fields and methods, one-dimensional and nested arrays,
// synchronized blocks, instanceof, casts, and string literals. There are no
// generics, exceptions, or reflection; those features are not needed by the
// transform (Table 1 of the paper) or by the evaluated workloads.
package lang

import "fmt"

// TokKind enumerates lexical token kinds.
type TokKind int

// Token kinds. Keyword kinds follow the operator kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokIntLit
	TokLongLit
	TokDoubleLit
	TokStringLit

	TokLParen
	TokRParen
	TokLBrace
	TokRBrace
	TokLBracket
	TokRBracket
	TokSemi
	TokComma
	TokDot

	TokAssign // =
	TokPlus
	TokMinus
	TokStar
	TokSlash
	TokPercent
	TokNot    // !
	TokLt     // <
	TokLe     // <=
	TokGt     // >
	TokGe     // >=
	TokEq     // ==
	TokNe     // !=
	TokAndAnd // &&
	TokOrOr   // ||
	TokAnd    // &
	TokOr     // |
	TokCaret  // ^
	TokShl    // <<
	TokShr    // >>

	TokClass
	TokInterface
	TokExtends
	TokImplements
	TokStatic
	TokIf
	TokElse
	TokWhile
	TokFor
	TokReturn
	TokBreak
	TokContinue
	TokNew
	TokThis
	TokNull
	TokTrue
	TokFalse
	TokInstanceof
	TokSynchronized
	TokBooleanKw
	TokByteKw
	TokIntKw
	TokLongKw
	TokDoubleKw
	TokVoidKw
)

var keywords = map[string]TokKind{
	"class":        TokClass,
	"interface":    TokInterface,
	"extends":      TokExtends,
	"implements":   TokImplements,
	"static":       TokStatic,
	"if":           TokIf,
	"else":         TokElse,
	"while":        TokWhile,
	"for":          TokFor,
	"return":       TokReturn,
	"break":        TokBreak,
	"continue":     TokContinue,
	"new":          TokNew,
	"this":         TokThis,
	"null":         TokNull,
	"true":         TokTrue,
	"false":        TokFalse,
	"instanceof":   TokInstanceof,
	"synchronized": TokSynchronized,
	"boolean":      TokBooleanKw,
	"byte":         TokByteKw,
	"int":          TokIntKw,
	"long":         TokLongKw,
	"double":       TokDoubleKw,
	"void":         TokVoidKw,
}

var tokNames = map[TokKind]string{
	TokEOF: "EOF", TokIdent: "identifier", TokIntLit: "int literal",
	TokLongLit: "long literal", TokDoubleLit: "double literal",
	TokStringLit: "string literal",
	TokLParen:    "(", TokRParen: ")", TokLBrace: "{", TokRBrace: "}",
	TokLBracket: "[", TokRBracket: "]", TokSemi: ";", TokComma: ",",
	TokDot:    ".",
	TokAssign: "=", TokPlus: "+", TokMinus: "-", TokStar: "*",
	TokSlash: "/", TokPercent: "%", TokNot: "!",
	TokLt: "<", TokLe: "<=", TokGt: ">", TokGe: ">=",
	TokEq: "==", TokNe: "!=", TokAndAnd: "&&", TokOrOr: "||",
	TokAnd: "&", TokOr: "|", TokCaret: "^", TokShl: "<<", TokShr: ">>",
	TokClass: "class", TokInterface: "interface", TokExtends: "extends",
	TokImplements: "implements", TokStatic: "static", TokIf: "if",
	TokElse: "else", TokWhile: "while", TokFor: "for", TokReturn: "return",
	TokBreak: "break", TokContinue: "continue", TokNew: "new",
	TokThis: "this", TokNull: "null", TokTrue: "true", TokFalse: "false",
	TokInstanceof: "instanceof", TokSynchronized: "synchronized",
	TokBooleanKw: "boolean", TokByteKw: "byte", TokIntKw: "int",
	TokLongKw: "long", TokDoubleKw: "double", TokVoidKw: "void",
}

func (k TokKind) String() string {
	if s, ok := tokNames[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", int(k))
}

// Pos is a source position.
type Pos struct {
	File string
	Line int
	Col  int
}

func (p Pos) String() string {
	if p.File == "" {
		return fmt.Sprintf("%d:%d", p.Line, p.Col)
	}
	return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col)
}

// Token is a lexical token with its literal text and position.
type Token struct {
	Kind TokKind
	Text string
	Pos  Pos
}
