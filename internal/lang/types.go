package lang

import (
	"fmt"
	"sort"
)

// TypeKind classifies semantic types.
type TypeKind int

// Semantic type kinds. TNull is the type of the null literal.
const (
	TVoid TypeKind = iota
	TBool
	TByte
	TInt
	TLong
	TDouble
	TNull
	TClass
	TIface
	TArray
)

// Type is a semantic FJ type. Types are compared structurally with Equals;
// primitive singletons are package variables.
type Type struct {
	Kind TypeKind
	Name string // class/interface name for TClass/TIface
	Elem *Type  // element type for TArray
}

// Primitive type singletons.
var (
	VoidType   = &Type{Kind: TVoid}
	BoolType   = &Type{Kind: TBool}
	ByteType   = &Type{Kind: TByte}
	IntType    = &Type{Kind: TInt}
	LongType   = &Type{Kind: TLong}
	DoubleType = &Type{Kind: TDouble}
	NullType   = &Type{Kind: TNull}
)

// ClassType returns the type for a class name.
func ClassType(name string) *Type { return &Type{Kind: TClass, Name: name} }

// IfaceType returns the type for an interface name.
func IfaceType(name string) *Type { return &Type{Kind: TIface, Name: name} }

// ArrayOf returns the array type with the given element type.
func ArrayOf(elem *Type) *Type { return &Type{Kind: TArray, Elem: elem} }

// IsRef reports whether t is a reference type (class, interface, array, or
// null).
func (t *Type) IsRef() bool {
	return t.Kind == TClass || t.Kind == TIface || t.Kind == TArray || t.Kind == TNull
}

// IsNumeric reports whether t is byte, int, long, or double.
func (t *Type) IsNumeric() bool {
	return t.Kind == TByte || t.Kind == TInt || t.Kind == TLong || t.Kind == TDouble
}

// IsIntegral reports whether t is byte, int, or long.
func (t *Type) IsIntegral() bool {
	return t.Kind == TByte || t.Kind == TInt || t.Kind == TLong
}

// Equals reports structural type equality.
func (t *Type) Equals(o *Type) bool {
	if t == o {
		return true
	}
	if t == nil || o == nil || t.Kind != o.Kind {
		return false
	}
	switch t.Kind {
	case TClass, TIface:
		return t.Name == o.Name
	case TArray:
		return t.Elem.Equals(o.Elem)
	default:
		return true
	}
}

func (t *Type) String() string {
	switch t.Kind {
	case TVoid:
		return "void"
	case TBool:
		return "boolean"
	case TByte:
		return "byte"
	case TInt:
		return "int"
	case TLong:
		return "long"
	case TDouble:
		return "double"
	case TNull:
		return "null"
	case TClass, TIface:
		return t.Name
	case TArray:
		return t.Elem.String() + "[]"
	}
	return "?"
}

// FieldSize returns the byte size of a value of this type when stored in an
// object field, array element, or page record slot. References and page
// references are 8 bytes; layouts are therefore identical between heap
// objects and page records (Figure 1 of the paper).
func (t *Type) FieldSize() int {
	switch t.Kind {
	case TBool, TByte:
		return 1
	case TInt:
		return 4
	case TLong, TDouble:
		return 8
	default:
		return 8 // references
	}
}

// ---------------------------------------------------------------------------
// Program-level symbol tables

// Field is a resolved field.
type Field struct {
	Name   string
	Type   *Type
	Owner  *Class
	Static bool
	// Offset is the byte offset of the field from the start of the record
	// body (after the header), superclass fields first. Valid for instance
	// fields after layout.
	Offset int
	// StaticIndex indexes the VM's static storage for static fields.
	StaticIndex int
}

// Method is a resolved method, constructor, or interface method signature.
type Method struct {
	Name       string
	Owner      *Class // nil for interface methods
	OwnerIface *Iface // nil for class methods
	Static     bool
	IsCtor     bool
	Params     []*Type
	ParamNames []string
	Ret        *Type
	Decl       *MethodDecl
}

// Sig returns a human-readable signature.
func (m *Method) Sig() string {
	owner := ""
	if m.Owner != nil {
		owner = m.Owner.Name
	} else if m.OwnerIface != nil {
		owner = m.OwnerIface.Name
	}
	s := owner + "." + m.Name + "("
	for i, p := range m.Params {
		if i > 0 {
			s += ", "
		}
		s += p.String()
	}
	return s + ") " + m.Ret.String()
}

// Class is a resolved class with its layout and dispatch tables.
type Class struct {
	Name    string
	Decl    *ClassDecl
	Super   *Class
	Ifaces  []*Iface
	Subs    []*Class // direct subclasses
	Fields  []*Field // declared instance fields, in declaration order
	Statics []*Field // declared static fields
	Methods map[string]*Method
	Ctor    *Method
	// AllFields lists instance fields superclass-first; offsets are laid
	// out over this slice.
	AllFields []*Field
	// BodySize is the total byte size of all instance fields (the record
	// body, excluding any header).
	BodySize int
	// ID is the class's type ID, assigned densely in hierarchy order. Used
	// as the record type tag and for dispatch.
	ID int
}

// Iface is a resolved interface.
type Iface struct {
	Name    string
	Decl    *IfaceDecl
	Methods map[string]*Method
}

// IsSubclassOf reports whether c is t or a subclass of t.
func (c *Class) IsSubclassOf(t *Class) bool {
	for x := c; x != nil; x = x.Super {
		if x == t {
			return true
		}
	}
	return false
}

// Implements reports whether c or any superclass implements iface.
func (c *Class) Implements(iface *Iface) bool {
	for x := c; x != nil; x = x.Super {
		for _, i := range x.Ifaces {
			if i == iface {
				return true
			}
		}
	}
	return false
}

// Resolve finds the implementation of method name for receiver class c,
// walking up the hierarchy.
func (c *Class) Resolve(name string) *Method {
	for x := c; x != nil; x = x.Super {
		if m, ok := x.Methods[name]; ok {
			return m
		}
	}
	return nil
}

// FindField finds the instance field name in c or a superclass.
func (c *Class) FindField(name string) *Field {
	for x := c; x != nil; x = x.Super {
		for _, f := range x.Fields {
			if f.Name == name {
				return f
			}
		}
	}
	return nil
}

// FindStatic finds the static field name in c or a superclass.
func (c *Class) FindStatic(name string) *Field {
	for x := c; x != nil; x = x.Super {
		for _, f := range x.Statics {
			if f.Name == name {
				return f
			}
		}
	}
	return nil
}

// Hierarchy is the resolved class/interface world for one program.
type Hierarchy struct {
	Classes map[string]*Class
	Ifaces  map[string]*Iface
	// Ordered lists in deterministic (name) order, Object first for
	// Ordered class list.
	ClassList []*Class
	IfaceList []*Iface
	Object    *Class
	String    *Class // nil if the program has no String class
	// NumStatics is the total number of static field slots.
	NumStatics int
}

// Class returns the named class or nil.
func (h *Hierarchy) Class(name string) *Class { return h.Classes[name] }

// Iface returns the named interface or nil.
func (h *Hierarchy) Iface(name string) *Iface { return h.Ifaces[name] }

// IsAssignable reports whether a value of type src may be assigned to a
// location of type dst without an explicit cast (reference widening and
// null only; numeric widening is handled by the checker inserting casts).
func (h *Hierarchy) IsAssignable(dst, src *Type) bool {
	if dst.Equals(src) {
		return true
	}
	if src.Kind == TNull && dst.IsRef() && dst.Kind != TNull {
		return true
	}
	switch dst.Kind {
	case TClass:
		if src.Kind != TClass {
			return false
		}
		sc, dc := h.Classes[src.Name], h.Classes[dst.Name]
		return sc != nil && dc != nil && sc.IsSubclassOf(dc)
	case TIface:
		di := h.Ifaces[dst.Name]
		if di == nil {
			return false
		}
		if src.Kind == TClass {
			sc := h.Classes[src.Name]
			return sc != nil && sc.Implements(di)
		}
		return false
	case TArray:
		// Array types are invariant except that any array is assignable to
		// Object.
		return false
	}
	if dst.Kind == TClass && dst.Name == "Object" {
		return src.IsRef()
	}
	return false
}

// assignableToObject reports the special case: any reference type can be
// assigned to Object.
func (h *Hierarchy) assignableRef(dst, src *Type) bool {
	if dst.Kind == TClass && dst.Name == "Object" && src.IsRef() {
		return true
	}
	return h.IsAssignable(dst, src)
}

// LookupIfaceMethod finds the interface method signature name on iface.
func (i *Iface) LookupIfaceMethod(name string) *Method { return i.Methods[name] }

func sortedClassNames(m map[string]*ClassDecl) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func (h *Hierarchy) typeOf(te TypeExpr) (*Type, error) {
	var base *Type
	switch te.Kind {
	case TVoid:
		base = VoidType
	case TBool:
		base = BoolType
	case TByte:
		base = ByteType
	case TInt:
		base = IntType
	case TLong:
		base = LongType
	case TDouble:
		base = DoubleType
	case TClass:
		if _, ok := h.Classes[te.Name]; ok {
			base = ClassType(te.Name)
		} else if _, ok := h.Ifaces[te.Name]; ok {
			base = IfaceType(te.Name)
		} else {
			return nil, fmt.Errorf("%s: unknown type %s", te.Pos, te.Name)
		}
	default:
		return nil, fmt.Errorf("%s: bad type expression", te.Pos)
	}
	if te.Kind == TVoid && te.Dims > 0 {
		return nil, fmt.Errorf("%s: array of void", te.Pos)
	}
	for i := 0; i < te.Dims; i++ {
		base = ArrayOf(base)
	}
	return base, nil
}
