package lang

import (
	"fmt"
	"strconv"
)

// Parser is a recursive-descent parser for FJ.
type Parser struct {
	toks []Token
	pos  int
	file string
}

// Parse parses one FJ compilation unit.
func Parse(file, src string) (*File, error) {
	toks, err := Lex(file, src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks, file: file}
	return p.parseFile()
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }
func (p *Parser) at(k TokKind) bool {
	return p.toks[p.pos].Kind == k
}
func (p *Parser) peekKind(n int) TokKind {
	if p.pos+n >= len(p.toks) {
		return TokEOF
	}
	return p.toks[p.pos+n].Kind
}

func (p *Parser) accept(k TokKind) bool {
	if p.at(k) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expect(k TokKind) (Token, error) {
	if p.at(k) {
		return p.next(), nil
	}
	t := p.cur()
	return t, fmt.Errorf("%s: expected %s, found %s %q", t.Pos, k, t.Kind, t.Text)
}

func (p *Parser) parseFile() (*File, error) {
	f := &File{Name: p.file}
	for !p.at(TokEOF) {
		switch p.cur().Kind {
		case TokClass:
			c, err := p.parseClass()
			if err != nil {
				return nil, err
			}
			f.Classes = append(f.Classes, c)
		case TokInterface:
			i, err := p.parseIface()
			if err != nil {
				return nil, err
			}
			f.Ifaces = append(f.Ifaces, i)
		default:
			t := p.cur()
			return nil, fmt.Errorf("%s: expected class or interface, found %q", t.Pos, t.Text)
		}
	}
	return f, nil
}

func (p *Parser) parseClass() (*ClassDecl, error) {
	kw, _ := p.expect(TokClass)
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	c := &ClassDecl{Pos: kw.Pos, Name: name.Text}
	if p.accept(TokExtends) {
		s, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		c.Extends = s.Text
	}
	if p.accept(TokImplements) {
		for {
			i, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			c.Implements = append(c.Implements, i.Text)
			if !p.accept(TokComma) {
				break
			}
		}
	}
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	for !p.at(TokRBrace) {
		if err := p.parseMember(c); err != nil {
			return nil, err
		}
	}
	p.next() // }
	return c, nil
}

func (p *Parser) parseIface() (*IfaceDecl, error) {
	kw, _ := p.expect(TokInterface)
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	i := &IfaceDecl{Pos: kw.Pos, Name: name.Text}
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	for !p.at(TokRBrace) {
		ret, err := p.parseTypeExpr()
		if err != nil {
			return nil, err
		}
		mn, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		params, err := p.parseParams()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		i.Methods = append(i.Methods, &MethodDecl{
			Pos: mn.Pos, Name: mn.Text, Params: params, Ret: ret,
		})
	}
	p.next() // }
	return i, nil
}

// parseMember parses one field, method, or constructor inside class c.
func (p *Parser) parseMember(c *ClassDecl) error {
	static := p.accept(TokStatic)
	// Constructor: Ident '(' where Ident == class name.
	if !static && p.at(TokIdent) && p.cur().Text == c.Name && p.peekKind(1) == TokLParen {
		nameTok := p.next()
		params, err := p.parseParams()
		if err != nil {
			return err
		}
		body, err := p.parseBlock()
		if err != nil {
			return err
		}
		if c.Ctor != nil {
			return fmt.Errorf("%s: duplicate constructor for %s", nameTok.Pos, c.Name)
		}
		c.Ctor = &MethodDecl{
			Pos: nameTok.Pos, Name: c.Name, IsCtor: true,
			Params: params, Ret: TypeExpr{Kind: TVoid}, Body: body,
		}
		return nil
	}
	t, err := p.parseTypeExpr()
	if err != nil {
		return err
	}
	name, err := p.expect(TokIdent)
	if err != nil {
		return err
	}
	if p.at(TokLParen) {
		params, err := p.parseParams()
		if err != nil {
			return err
		}
		body, err := p.parseBlock()
		if err != nil {
			return err
		}
		c.Methods = append(c.Methods, &MethodDecl{
			Pos: name.Pos, Name: name.Text, Static: static,
			Params: params, Ret: t, Body: body,
		})
		return nil
	}
	if _, err := p.expect(TokSemi); err != nil {
		return err
	}
	c.Fields = append(c.Fields, &FieldDecl{
		Pos: name.Pos, Name: name.Text, Type: t, Static: static,
	})
	return nil
}

func (p *Parser) parseParams() ([]Param, error) {
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	var params []Param
	for !p.at(TokRParen) {
		if len(params) > 0 {
			if _, err := p.expect(TokComma); err != nil {
				return nil, err
			}
		}
		t, err := p.parseTypeExpr()
		if err != nil {
			return nil, err
		}
		n, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		params = append(params, Param{Pos: n.Pos, Name: n.Text, Type: t})
	}
	p.next() // )
	return params, nil
}

func isTypeStart(k TokKind) bool {
	switch k {
	case TokBooleanKw, TokByteKw, TokIntKw, TokLongKw, TokDoubleKw, TokVoidKw, TokIdent:
		return true
	}
	return false
}

func (p *Parser) parseTypeExpr() (TypeExpr, error) {
	t := p.cur()
	te := TypeExpr{Pos: t.Pos}
	switch t.Kind {
	case TokBooleanKw:
		te.Kind = TBool
	case TokByteKw:
		te.Kind = TByte
	case TokIntKw:
		te.Kind = TInt
	case TokLongKw:
		te.Kind = TLong
	case TokDoubleKw:
		te.Kind = TDouble
	case TokVoidKw:
		te.Kind = TVoid
	case TokIdent:
		te.Kind = TClass
		te.Name = t.Text
	default:
		return te, fmt.Errorf("%s: expected type, found %q", t.Pos, t.Text)
	}
	p.next()
	for p.at(TokLBracket) && p.peekKind(1) == TokRBracket {
		p.next()
		p.next()
		te.Dims++
	}
	return te, nil
}

// ---------------------------------------------------------------------------
// Statements

func (p *Parser) parseBlock() (*BlockStmt, error) {
	lb, err := p.expect(TokLBrace)
	if err != nil {
		return nil, err
	}
	b := &BlockStmt{Pos: lb.Pos}
	for !p.at(TokRBrace) {
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.next() // }
	return b, nil
}

func (p *Parser) parseStmt() (Stmt, error) {
	t := p.cur()
	switch t.Kind {
	case TokLBrace:
		return p.parseBlock()
	case TokIf:
		return p.parseIf()
	case TokWhile:
		return p.parseWhile()
	case TokFor:
		return p.parseFor()
	case TokReturn:
		p.next()
		rs := &ReturnStmt{Pos: t.Pos}
		if !p.at(TokSemi) {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			rs.Value = e
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return rs, nil
	case TokBreak:
		p.next()
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &BreakStmt{Pos: t.Pos}, nil
	case TokContinue:
		p.next()
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &ContinueStmt{Pos: t.Pos}, nil
	case TokSynchronized:
		p.next()
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		lock, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return &SyncStmt{Pos: t.Pos, Lock: lock, Body: body}, nil
	}
	s, err := p.parseSimpleStmt()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return s, nil
}

// parseSimpleStmt parses a declaration, assignment, or expression statement
// (no trailing semicolon) — the forms allowed in for-clauses.
func (p *Parser) parseSimpleStmt() (Stmt, error) {
	if p.isDeclStart() {
		return p.parseVarDecl()
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.at(TokAssign) {
		p.next()
		v, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		switch e.(type) {
		case *IdentExpr, *FieldExpr, *IndexExpr:
		default:
			return nil, fmt.Errorf("%s: invalid assignment target", p.cur().Pos)
		}
		return &AssignStmt{Pos: p.cur().Pos, Target: e, Value: v}, nil
	}
	if _, ok := e.(*CallExpr); !ok {
		return nil, fmt.Errorf("%s: expression statement must be a call", p.cur().Pos)
	}
	return &ExprStmt{Pos: p.cur().Pos, X: e}, nil
}

// isDeclStart reports whether the upcoming tokens begin a local variable
// declaration: a primitive type, or Ident ([])* Ident.
func (p *Parser) isDeclStart() bool {
	switch p.cur().Kind {
	case TokBooleanKw, TokByteKw, TokIntKw, TokLongKw, TokDoubleKw:
		return true
	case TokIdent:
		i := 1
		for p.peekKind(i) == TokLBracket && p.peekKind(i+1) == TokRBracket {
			i += 2
		}
		return p.peekKind(i) == TokIdent
	}
	return false
}

func (p *Parser) parseVarDecl() (Stmt, error) {
	t, err := p.parseTypeExpr()
	if err != nil {
		return nil, err
	}
	n, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	d := &VarDeclStmt{Pos: n.Pos, Name: n.Text, Type: t}
	if p.accept(TokAssign) {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		d.Init = e
	}
	return d, nil
}

func (p *Parser) parseIf() (Stmt, error) {
	kw := p.next()
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	then, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	is := &IfStmt{Pos: kw.Pos, Cond: cond, Then: then}
	if p.accept(TokElse) {
		els, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		is.Else = els
	}
	return is, nil
}

func (p *Parser) parseWhile() (Stmt, error) {
	kw := p.next()
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{Pos: kw.Pos, Cond: cond, Body: body}, nil
}

func (p *Parser) parseFor() (Stmt, error) {
	kw := p.next()
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	fs := &ForStmt{Pos: kw.Pos}
	if !p.at(TokSemi) {
		s, err := p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
		fs.Init = s
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	if !p.at(TokSemi) {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		fs.Cond = e
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	if !p.at(TokRParen) {
		s, err := p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
		fs.Post = s
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	fs.Body = body
	return fs, nil
}

// ---------------------------------------------------------------------------
// Expressions (precedence climbing)

func (p *Parser) parseExpr() (Expr, error) { return p.parseOrOr() }

func (p *Parser) parseBinaryLevel(sub func() (Expr, error), ops ...TokKind) (Expr, error) {
	x, err := sub()
	if err != nil {
		return nil, err
	}
	for {
		matched := false
		for _, op := range ops {
			if p.at(op) {
				t := p.next()
				y, err := sub()
				if err != nil {
					return nil, err
				}
				x = &BinaryExpr{Pos: t.Pos, Op: op, X: x, Y: y}
				matched = true
				break
			}
		}
		if !matched {
			return x, nil
		}
	}
}

func (p *Parser) parseOrOr() (Expr, error) {
	return p.parseBinaryLevel(p.parseAndAnd, TokOrOr)
}
func (p *Parser) parseAndAnd() (Expr, error) {
	return p.parseBinaryLevel(p.parseBitOr, TokAndAnd)
}
func (p *Parser) parseBitOr() (Expr, error) {
	return p.parseBinaryLevel(p.parseBitXor, TokOr)
}
func (p *Parser) parseBitXor() (Expr, error) {
	return p.parseBinaryLevel(p.parseBitAnd, TokCaret)
}
func (p *Parser) parseBitAnd() (Expr, error) {
	return p.parseBinaryLevel(p.parseEquality, TokAnd)
}
func (p *Parser) parseEquality() (Expr, error) {
	return p.parseBinaryLevel(p.parseRelational, TokEq, TokNe)
}

func (p *Parser) parseRelational() (Expr, error) {
	x, err := p.parseShift()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.at(TokLt) || p.at(TokLe) || p.at(TokGt) || p.at(TokGe):
			t := p.next()
			y, err := p.parseShift()
			if err != nil {
				return nil, err
			}
			x = &BinaryExpr{Pos: t.Pos, Op: t.Kind, X: x, Y: y}
		case p.at(TokInstanceof):
			t := p.next()
			target, err := p.parseTypeExpr()
			if err != nil {
				return nil, err
			}
			x = &InstanceOfExpr{Pos: t.Pos, X: x, Target: target}
		default:
			return x, nil
		}
	}
}

func (p *Parser) parseShift() (Expr, error) {
	return p.parseBinaryLevel(p.parseAdditive, TokShl, TokShr)
}
func (p *Parser) parseAdditive() (Expr, error) {
	return p.parseBinaryLevel(p.parseMultiplicative, TokPlus, TokMinus)
}
func (p *Parser) parseMultiplicative() (Expr, error) {
	return p.parseBinaryLevel(p.parseUnary, TokStar, TokSlash, TokPercent)
}

func (p *Parser) parseUnary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokMinus, TokNot:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Pos: t.Pos, Op: t.Kind, X: x}, nil
	}
	if t.Kind == TokLParen && p.isCastStart() {
		p.next() // (
		target, err := p.parseTypeExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &CastExpr{Pos: t.Pos, Target: target, X: x}, nil
	}
	return p.parsePostfix()
}

// isCastStart disambiguates "(T) expr" casts from parenthesized
// expressions. A cast requires a type inside the parens and a token that can
// begin a unary expression after the closing paren; "-" and "(" are
// excluded for identifier targets to keep "(x) - y" and "(x)(...)" as
// expressions.
func (p *Parser) isCastStart() bool {
	k1 := p.peekKind(1)
	switch k1 {
	case TokBooleanKw, TokByteKw, TokIntKw, TokLongKw, TokDoubleKw:
		return true
	case TokIdent:
	default:
		return false
	}
	i := 2
	for p.peekKind(i) == TokLBracket && p.peekKind(i+1) == TokRBracket {
		i += 2
	}
	if p.peekKind(i) != TokRParen {
		return false
	}
	switch p.peekKind(i + 1) {
	case TokIdent, TokThis, TokNull, TokNew, TokIntLit, TokLongLit,
		TokDoubleLit, TokStringLit, TokTrue, TokFalse, TokNot:
		return true
	}
	return false
}

func (p *Parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.at(TokDot):
			p.next()
			name, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			if p.at(TokLParen) {
				args, err := p.parseArgs()
				if err != nil {
					return nil, err
				}
				x = &CallExpr{Pos: name.Pos, Recv: x, Method: name.Text, Args: args}
			} else {
				x = &FieldExpr{Pos: name.Pos, X: x, Name: name.Text}
			}
		case p.at(TokLBracket):
			lb := p.next()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRBracket); err != nil {
				return nil, err
			}
			x = &IndexExpr{Pos: lb.Pos, X: x, Index: idx}
		default:
			return x, nil
		}
	}
}

func (p *Parser) parseArgs() ([]Expr, error) {
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	var args []Expr
	for !p.at(TokRParen) {
		if len(args) > 0 {
			if _, err := p.expect(TokComma); err != nil {
				return nil, err
			}
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		args = append(args, e)
	}
	p.next() // )
	return args, nil
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokIntLit:
		p.next()
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil || v > 1<<31 {
			return nil, fmt.Errorf("%s: bad int literal %q", t.Pos, t.Text)
		}
		return &IntLit{Pos: t.Pos, Val: int32(v)}, nil
	case TokLongLit:
		p.next()
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%s: bad long literal %q", t.Pos, t.Text)
		}
		return &LongLit{Pos: t.Pos, Val: v}, nil
	case TokDoubleLit:
		p.next()
		v, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, fmt.Errorf("%s: bad double literal %q", t.Pos, t.Text)
		}
		return &DoubleLit{Pos: t.Pos, Val: v}, nil
	case TokStringLit:
		p.next()
		return &StringLit{Pos: t.Pos, Val: t.Text}, nil
	case TokTrue, TokFalse:
		p.next()
		return &BoolLit{Pos: t.Pos, Val: t.Kind == TokTrue}, nil
	case TokNull:
		p.next()
		return &NullLit{Pos: t.Pos}, nil
	case TokThis:
		p.next()
		return &ThisExpr{Pos: t.Pos}, nil
	case TokIdent:
		p.next()
		return &IdentExpr{Pos: t.Pos, Name: t.Text}, nil
	case TokLParen:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case TokNew:
		return p.parseNew()
	}
	return nil, fmt.Errorf("%s: unexpected token %q in expression", t.Pos, t.Text)
}

func (p *Parser) parseNew() (Expr, error) {
	kw := p.next()
	te, err := p.parseBaseTypeForNew()
	if err != nil {
		return nil, err
	}
	if p.at(TokLParen) {
		if te.Kind != TClass {
			return nil, fmt.Errorf("%s: cannot construct primitive type", kw.Pos)
		}
		args, err := p.parseArgs()
		if err != nil {
			return nil, err
		}
		return &NewExpr{Pos: kw.Pos, Class: te.Name, Args: args}, nil
	}
	if _, err := p.expect(TokLBracket); err != nil {
		return nil, err
	}
	length, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRBracket); err != nil {
		return nil, err
	}
	// Trailing empty dims: new T[n][][] — the element type gains dims.
	for p.at(TokLBracket) && p.peekKind(1) == TokRBracket {
		p.next()
		p.next()
		te.Dims++
	}
	return &NewArrayExpr{Pos: kw.Pos, Elem: te, Len: length}, nil
}

// parseBaseTypeForNew parses the base type after `new` (no [] suffixes —
// those are handled by the caller).
func (p *Parser) parseBaseTypeForNew() (TypeExpr, error) {
	t := p.cur()
	te := TypeExpr{Pos: t.Pos}
	switch t.Kind {
	case TokBooleanKw:
		te.Kind = TBool
	case TokByteKw:
		te.Kind = TByte
	case TokIntKw:
		te.Kind = TInt
	case TokLongKw:
		te.Kind = TLong
	case TokDoubleKw:
		te.Kind = TDouble
	case TokIdent:
		te.Kind = TClass
		te.Name = t.Text
	default:
		return te, fmt.Errorf("%s: expected type after new, found %q", t.Pos, t.Text)
	}
	p.next()
	return te, nil
}
