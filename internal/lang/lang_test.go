package lang

import (
	"strings"
	"testing"
	"testing/quick"
)

func mustParse(t *testing.T, src string) *File {
	t.Helper()
	f, err := Parse("t.fj", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f
}

func buildChecked(t *testing.T, src string) *Hierarchy {
	t.Helper()
	f := mustParse(t, "class Object { }\n"+src)
	h, err := BuildHierarchy(f)
	if err != nil {
		t.Fatalf("hierarchy: %v", err)
	}
	if err := Check(h); err != nil {
		t.Fatalf("check: %v", err)
	}
	return h
}

func TestLexBasics(t *testing.T) {
	toks, err := Lex("t", `class Foo { int x = 42; } // comment
/* block */ "str\n" 1.5 10L <= >> && !=`)
	if err != nil {
		t.Fatal(err)
	}
	kinds := []TokKind{TokClass, TokIdent, TokLBrace, TokIntKw, TokIdent,
		TokAssign, TokIntLit, TokSemi, TokRBrace, TokStringLit,
		TokDoubleLit, TokLongLit, TokLe, TokShr, TokAndAnd, TokNe, TokEOF}
	if len(toks) != len(kinds) {
		t.Fatalf("got %d tokens, want %d", len(toks), len(kinds))
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Fatalf("token %d: got %v want %v", i, toks[i].Kind, k)
		}
	}
	if toks[9].Text != "str\n" {
		t.Fatalf("string literal %q", toks[9].Text)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{`"unterminated`, "/* open", `"bad \q esc"`, "#"} {
		if _, err := Lex("t", src); err == nil {
			t.Fatalf("no error for %q", src)
		}
	}
}

func TestLexerNeverPanics(t *testing.T) {
	f := func(s string) bool {
		lx := NewLexer("f", s)
		for i := 0; i < len(s)+2; i++ {
			tok, err := lx.Next()
			if err != nil {
				return true
			}
			if tok.Kind == TokEOF {
				return true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestParseClassStructure(t *testing.T) {
	f := mustParse(t, `
interface Runnable { void run(); }
class A extends B implements Runnable, Comparable {
    static int counter;
    double[] values;
    A(int x) { this.y = x; }
    void run() { }
    static A make() { return new A(3); }
}
interface Comparable { int compareTo(Object o); }
class B { int y; }
`)
	if len(f.Classes) != 2 || len(f.Ifaces) != 2 {
		t.Fatalf("classes=%d ifaces=%d", len(f.Classes), len(f.Ifaces))
	}
	a := f.Classes[0]
	if a.Extends != "B" || len(a.Implements) != 2 || a.Ctor == nil {
		t.Fatal("class A header misparsed")
	}
	if len(a.Fields) != 2 || !a.Fields[0].Static || a.Fields[1].Type.Dims != 1 {
		t.Fatal("fields misparsed")
	}
	if len(a.Methods) != 2 || !a.Methods[1].Static {
		t.Fatal("methods misparsed")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"class { }",
		"class A extends { }",
		"class A { int; }",
		"class A { void m() { if } }",
		"class A { void m() { x = ; } }",
		"class A { void m() { 1 + 2; } }", // expr stmt must be a call
	}
	for _, src := range cases {
		if _, err := Parse("t", src); err == nil {
			t.Fatalf("no parse error for %q", src)
		}
	}
}

// TestParserNeverPanics feeds token soup to the parser; it must return an
// error or a tree, never panic.
func TestParserNeverPanics(t *testing.T) {
	fragments := []string{
		"class", "interface", "extends", "implements", "{", "}", "(", ")",
		"[", "]", ";", ",", ".", "=", "+", "-", "if", "else", "while",
		"for", "return", "new", "this", "null", "int", "x", "Foo", "42",
		"1.5", "\"s\"", "instanceof", "synchronized", "static", "boolean",
	}
	rng := uint64(12345)
	next := func(n int) int {
		rng = rng*6364136223846793005 + 1442695040888963407
		return int(rng>>33) % n
	}
	for trial := 0; trial < 300; trial++ {
		var sb strings.Builder
		for i := 0; i < 40; i++ {
			sb.WriteString(fragments[next(len(fragments))])
			sb.WriteByte(' ')
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("parser panicked on %q: %v", sb.String(), r)
				}
			}()
			Parse("fuzz", sb.String()) //nolint:errcheck
		}()
	}
}

func TestCastVsParenDisambiguation(t *testing.T) {
	h := buildChecked(t, `
class A {
    int m(Object o) {
        A a = (A) o;          // cast
        int x = 3;
        int y = (x) + 1;      // parenthesized expr
        double d = (double) x; // prim cast
        return y + (int) d;
    }
}
`)
	if h.Class("A") == nil {
		t.Fatal("missing class")
	}
}

func TestFieldLayoutSuperFirst(t *testing.T) {
	h := buildChecked(t, `
class A { int a; double b; }
class B extends A { byte c; long d; }
`)
	b := h.Class("B")
	var offs []int
	for _, f := range b.AllFields {
		offs = append(offs, f.Offset)
	}
	// a at 0 (4), b aligned to 8, c at 16, d aligned to 24.
	want := []int{0, 8, 16, 24}
	for i, w := range want {
		if offs[i] != w {
			t.Fatalf("field %d offset %d want %d", i, offs[i], w)
		}
	}
	if b.BodySize != 32 {
		t.Fatalf("BodySize %d want 32", b.BodySize)
	}
	// Subclass layout extends the super layout (required for the shared
	// record format of Figure 1).
	a := h.Class("A")
	if a.AllFields[0] != b.AllFields[0] || a.AllFields[1] != b.AllFields[1] {
		t.Fatal("super fields not shared")
	}
}

func TestHierarchyErrors(t *testing.T) {
	cases := map[string]string{
		"cycle":         "class A extends B { }\nclass B extends A { }",
		"unknown super": "class A extends Missing { }",
		"dup class":     "class A { }\nclass A { }",
		"bad override":  "class A { int m() { return 1; } }\nclass B extends A { double m() { return 1.0; } }",
		"missing iface": "interface I { void f(); }\nclass A implements I { }",
		"field shadow":  "class A { int x; }\nclass B extends A { int x; }",
	}
	for name, src := range cases {
		f := mustParse(t, "class Object { }\n"+src)
		if _, err := BuildHierarchy(f); err == nil {
			t.Fatalf("%s: no error", name)
		}
	}
}

func TestCheckerErrors(t *testing.T) {
	cases := map[string]string{
		"type mismatch":    "class A { void m() { int x = true; } }",
		"unknown var":      "class A { void m() { x = 1; } }",
		"unknown method":   "class A { void m() { this.nope(); } }",
		"arg count":        "class A { void f(int x) { } void m() { this.f(); } }",
		"narrowing":        "class A { void m() { long l = 1L; int x = l; } }",
		"this in static":   "class A { static void m() { A a = this; } }",
		"break outside":    "class A { void m() { break; } }",
		"return mismatch":  "class A { int m() { return true; } }",
		"bad index":        "class A { void m() { int[] a = new int[3]; int x = a[1.5]; } }",
		"non-bool cond":    "class A { void m() { if (1) { } } }",
		"double remainder": "class A { void m() { double d = 1.0 % 2.0; } }",
	}
	for name, src := range cases {
		f := mustParse(t, "class Object { }\n"+src)
		h, err := BuildHierarchy(f)
		if err != nil {
			continue // some cases fail at hierarchy stage, fine
		}
		if err := Check(h); err == nil {
			t.Fatalf("%s: checker accepted invalid program", name)
		}
	}
}

func TestWideningInserted(t *testing.T) {
	h := buildChecked(t, `
class A {
    double m(int x) {
        double d = x;       // int -> double
        long l = x + 1;     // int -> long
        return d + l;       // long -> double in binary op
    }
}
`)
	m := h.Class("A").Methods["m"]
	if !m.Ret.Equals(DoubleType) {
		t.Fatal("bad return type")
	}
}

func TestAssignability(t *testing.T) {
	h := buildChecked(t, `
interface I { void f(); }
class A implements I { void f() { } }
class B extends A { }
class C { }
`)
	cases := []struct {
		dst, src *Type
		want     bool
	}{
		{ClassType("A"), ClassType("B"), true},
		{ClassType("B"), ClassType("A"), false},
		{IfaceType("I"), ClassType("B"), true},
		{IfaceType("I"), ClassType("C"), false},
		{ClassType("A"), NullType, true},
		{ClassType("Object"), ClassType("C"), true},
		{ArrayOf(IntType), ArrayOf(IntType), true},
		{ArrayOf(IntType), ArrayOf(LongType), false},
	}
	for i, c := range cases {
		if got := h.assignableRef(c.dst, c.src); got != c.want {
			t.Fatalf("case %d: assignable(%s, %s) = %v want %v", i, c.dst, c.src, got, c.want)
		}
	}
}

func TestTypeFieldSizes(t *testing.T) {
	if BoolType.FieldSize() != 1 || ByteType.FieldSize() != 1 ||
		IntType.FieldSize() != 4 || LongType.FieldSize() != 8 ||
		DoubleType.FieldSize() != 8 || ClassType("X").FieldSize() != 8 ||
		ArrayOf(IntType).FieldSize() != 8 {
		t.Fatal("field sizes wrong")
	}
}

func TestStaticRewrite(t *testing.T) {
	h := buildChecked(t, `
class A {
    static int counter;
    static int next() { A.counter = A.counter + 1; return A.counter; }
}
class B { void m() { int x = A.next() + A.counter; } }
`)
	a := h.Class("A")
	if len(a.Statics) != 1 || !a.Statics[0].Static {
		t.Fatal("static field lost")
	}
	if h.NumStatics != 1 {
		t.Fatalf("NumStatics %d", h.NumStatics)
	}
}

func TestSynchronizedChecks(t *testing.T) {
	buildChecked(t, `
class A {
    void m(Object o) {
        synchronized (o) {
            int x = 1;
        }
    }
}
`)
	f := mustParse(t, "class Object { }\nclass A { void m() { synchronized (1) { } } }")
	h, err := BuildHierarchy(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(h); err == nil || !strings.Contains(err.Error(), "reference") {
		t.Fatalf("synchronized on int accepted: %v", err)
	}
}
