package lang

import (
	"fmt"
	"strings"
)

// Lexer converts FJ source text into a token stream. It supports // line
// comments and /* */ block comments, decimal integer, long (L suffix) and
// double literals, and double-quoted string literals with \n \t \\ \" \r \0
// escapes.
type Lexer struct {
	src  string
	file string
	off  int
	line int
	col  int
}

// NewLexer returns a lexer over src; file is used in positions and errors.
func NewLexer(file, src string) *Lexer {
	return &Lexer{src: src, file: file, line: 1, col: 1}
}

// Lex tokenizes the whole input, returning the tokens terminated by an EOF
// token, or the first lexical error.
func Lex(file, src string) ([]Token, error) {
	lx := NewLexer(file, src)
	var toks []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}

func (lx *Lexer) pos() Pos { return Pos{File: lx.file, Line: lx.line, Col: lx.col} }

func (lx *Lexer) peek() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *Lexer) peek2() byte {
	if lx.off+1 >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+1]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *Lexer) errf(p Pos, format string, args ...any) error {
	return fmt.Errorf("%s: %s", p, fmt.Sprintf(format, args...))
}

func (lx *Lexer) skipSpaceAndComments() error {
	for lx.off < len(lx.src) {
		c := lx.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '/' && lx.peek2() == '/':
			for lx.off < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peek2() == '*':
			p := lx.pos()
			lx.advance()
			lx.advance()
			closed := false
			for lx.off < len(lx.src) {
				if lx.peek() == '*' && lx.peek2() == '/' {
					lx.advance()
					lx.advance()
					closed = true
					break
				}
				lx.advance()
			}
			if !closed {
				return lx.errf(p, "unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || c == '$' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentCont(c byte) bool { return isIdentStart(c) || isDigit(c) }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// Next returns the next token.
func (lx *Lexer) Next() (Token, error) {
	if err := lx.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	p := lx.pos()
	if lx.off >= len(lx.src) {
		return Token{Kind: TokEOF, Pos: p}, nil
	}
	c := lx.peek()
	switch {
	case isIdentStart(c):
		start := lx.off
		for lx.off < len(lx.src) && isIdentCont(lx.peek()) {
			lx.advance()
		}
		text := lx.src[start:lx.off]
		if k, ok := keywords[text]; ok {
			return Token{Kind: k, Text: text, Pos: p}, nil
		}
		return Token{Kind: TokIdent, Text: text, Pos: p}, nil
	case isDigit(c):
		return lx.lexNumber(p)
	case c == '"':
		return lx.lexString(p)
	}
	lx.advance()
	two := func(next byte, k2, k1 TokKind) Token {
		if lx.peek() == next {
			lx.advance()
			return Token{Kind: k2, Text: tokNames[k2], Pos: p}
		}
		return Token{Kind: k1, Text: tokNames[k1], Pos: p}
	}
	switch c {
	case '(':
		return Token{Kind: TokLParen, Text: "(", Pos: p}, nil
	case ')':
		return Token{Kind: TokRParen, Text: ")", Pos: p}, nil
	case '{':
		return Token{Kind: TokLBrace, Text: "{", Pos: p}, nil
	case '}':
		return Token{Kind: TokRBrace, Text: "}", Pos: p}, nil
	case '[':
		return Token{Kind: TokLBracket, Text: "[", Pos: p}, nil
	case ']':
		return Token{Kind: TokRBracket, Text: "]", Pos: p}, nil
	case ';':
		return Token{Kind: TokSemi, Text: ";", Pos: p}, nil
	case ',':
		return Token{Kind: TokComma, Text: ",", Pos: p}, nil
	case '.':
		return Token{Kind: TokDot, Text: ".", Pos: p}, nil
	case '+':
		return Token{Kind: TokPlus, Text: "+", Pos: p}, nil
	case '-':
		return Token{Kind: TokMinus, Text: "-", Pos: p}, nil
	case '*':
		return Token{Kind: TokStar, Text: "*", Pos: p}, nil
	case '/':
		return Token{Kind: TokSlash, Text: "/", Pos: p}, nil
	case '%':
		return Token{Kind: TokPercent, Text: "%", Pos: p}, nil
	case '^':
		return Token{Kind: TokCaret, Text: "^", Pos: p}, nil
	case '=':
		return two('=', TokEq, TokAssign), nil
	case '!':
		return two('=', TokNe, TokNot), nil
	case '<':
		if lx.peek() == '<' {
			lx.advance()
			return Token{Kind: TokShl, Text: "<<", Pos: p}, nil
		}
		return two('=', TokLe, TokLt), nil
	case '>':
		if lx.peek() == '>' {
			lx.advance()
			return Token{Kind: TokShr, Text: ">>", Pos: p}, nil
		}
		return two('=', TokGe, TokGt), nil
	case '&':
		return two('&', TokAndAnd, TokAnd), nil
	case '|':
		return two('|', TokOrOr, TokOr), nil
	}
	return Token{}, lx.errf(p, "unexpected character %q", string(c))
}

func (lx *Lexer) lexNumber(p Pos) (Token, error) {
	start := lx.off
	for lx.off < len(lx.src) && isDigit(lx.peek()) {
		lx.advance()
	}
	isDouble := false
	if lx.peek() == '.' && isDigit(lx.peek2()) {
		isDouble = true
		lx.advance()
		for lx.off < len(lx.src) && isDigit(lx.peek()) {
			lx.advance()
		}
	}
	if lx.peek() == 'e' || lx.peek() == 'E' {
		save := lx.off
		lx.advance()
		if lx.peek() == '+' || lx.peek() == '-' {
			lx.advance()
		}
		if isDigit(lx.peek()) {
			isDouble = true
			for lx.off < len(lx.src) && isDigit(lx.peek()) {
				lx.advance()
			}
		} else {
			lx.off = save
		}
	}
	text := lx.src[start:lx.off]
	if isDouble {
		return Token{Kind: TokDoubleLit, Text: text, Pos: p}, nil
	}
	if lx.peek() == 'L' || lx.peek() == 'l' {
		lx.advance()
		return Token{Kind: TokLongLit, Text: text, Pos: p}, nil
	}
	return Token{Kind: TokIntLit, Text: text, Pos: p}, nil
}

func (lx *Lexer) lexString(p Pos) (Token, error) {
	lx.advance() // opening quote
	var sb strings.Builder
	for {
		if lx.off >= len(lx.src) {
			return Token{}, lx.errf(p, "unterminated string literal")
		}
		c := lx.advance()
		switch c {
		case '"':
			return Token{Kind: TokStringLit, Text: sb.String(), Pos: p}, nil
		case '\n':
			return Token{}, lx.errf(p, "newline in string literal")
		case '\\':
			if lx.off >= len(lx.src) {
				return Token{}, lx.errf(p, "unterminated escape")
			}
			e := lx.advance()
			switch e {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			case 'r':
				sb.WriteByte('\r')
			case '0':
				sb.WriteByte(0)
			case '\\':
				sb.WriteByte('\\')
			case '"':
				sb.WriteByte('"')
			default:
				return Token{}, lx.errf(p, "unknown escape \\%s", string(e))
			}
		default:
			sb.WriteByte(c)
		}
	}
}
