package bench

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestStats(t *testing.T) {
	cases := []struct {
		name    string
		in      []int64
		med, md int64
	}{
		{"odd", []int64{5, 1, 3}, 3, 2},
		{"even", []int64{1, 2, 3, 4}, 2, 1},
		{"even-unsorted", []int64{40, 10, 30, 20, 60, 50}, 35, 15},
		{"single", []int64{7}, 7, 0},
		{"identical", []int64{42, 42, 42, 42}, 42, 0},
		{"outlier", []int64{10, 11, 10, 12, 500}, 11, 1},
		{"empty", nil, 0, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			med, mad, _, _ := Stats(c.in)
			if med != c.med || mad != c.md {
				t.Fatalf("Stats(%v) = median %d, mad %d; want %d, %d", c.in, med, mad, c.med, c.md)
			}
		})
	}
	// The outlier case is the point of using median/MAD: one 50x-slow rep
	// must not move the headline numbers.
	in := []int64{10, 11, 10, 12, 500}
	med, mad, min, max := Stats(in)
	if med != 11 || mad != 1 || min != 10 || max != 500 {
		t.Fatalf("outlier handling: got median=%d mad=%d min=%d max=%d", med, mad, min, max)
	}
	if in[4] != 500 {
		t.Fatal("Stats mutated its input")
	}
}

func mkFile(rev string, medians map[string]int64) *File {
	f := &File{Schema: Schema, Rev: rev}
	for name, m := range medians {
		f.Cases = append(f.Cases, Result{Name: name, Reps: 5, Warmup: 1, MedianNS: m, RepsNS: []int64{m}})
	}
	return f
}

func TestCompareFlagsRegression(t *testing.T) {
	base := mkFile("main", map[string]int64{"a": 100, "b": 100})
	cur := mkFile("pr", map[string]int64{"a": 105, "b": 125})
	deltas, n := Compare(base, cur, 0.10)
	if n != 1 {
		t.Fatalf("regressed = %d, want 1", n)
	}
	for _, d := range deltas {
		want := d.Name == "b"
		if d.Regressed != want {
			t.Fatalf("case %s regressed=%v", d.Name, d.Regressed)
		}
	}
}

func TestCompareZeroTolerance(t *testing.T) {
	// tolerance 0 flags any slowdown, however small, but never an exact
	// match — the gate must not fail on "same speed".
	base := mkFile("main", map[string]int64{"same": 1000, "hair": 1000})
	cur := mkFile("pr", map[string]int64{"same": 1000, "hair": 1001})
	deltas, n := Compare(base, cur, 0)
	if n != 1 {
		t.Fatalf("regressed = %d, want 1 (%+v)", n, deltas)
	}
	for _, d := range deltas {
		if want := d.Name == "hair"; d.Regressed != want {
			t.Fatalf("case %s regressed=%v", d.Name, d.Regressed)
		}
	}
}

func TestCompareNormalizesByCalibration(t *testing.T) {
	// Current machine is uniformly 2x slower (calibration 100 -> 200):
	// a case that also doubled is NOT a regression, one that tripled is.
	base := mkFile("main", map[string]int64{CalibrationCase: 100, "same": 100, "slow": 100})
	cur := mkFile("pr", map[string]int64{CalibrationCase: 200, "same": 200, "slow": 300})
	deltas, n := Compare(base, cur, 0.10)
	if n != 1 {
		t.Fatalf("regressed = %d, want 1 (got %+v)", n, deltas)
	}
	for _, d := range deltas {
		switch d.Name {
		case "same":
			if d.Regressed || d.NormRatio < 0.99 || d.NormRatio > 1.01 {
				t.Fatalf("same: %+v", d)
			}
		case "slow":
			if !d.Regressed {
				t.Fatalf("slow: %+v", d)
			}
		case CalibrationCase:
			if d.Regressed {
				t.Fatal("calibration case must never be flagged")
			}
		}
	}
}

func TestCompareSkipsUnmatchedCases(t *testing.T) {
	base := mkFile("main", map[string]int64{"a": 100})
	cur := mkFile("pr", map[string]int64{"a": 100, "new": 999})
	deltas, n := Compare(base, cur, 0.10)
	if n != 0 || len(deltas) != 1 || deltas[0].Name != "a" {
		t.Fatalf("deltas = %+v, regressed = %d", deltas, n)
	}
}

func TestDecodeRejectsUnknownSchema(t *testing.T) {
	_, err := Decode(strings.NewReader(`{"schema":"facade.bench/v99","cases":[]}`))
	if err == nil || !strings.Contains(err.Error(), "unsupported schema") {
		t.Fatalf("err = %v", err)
	}
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	f := mkFile("rt", map[string]int64{"x": 42})
	f.Cases[0].Metrics = map[string]float64{"edges_per_s": 1234.5678901}
	var buf bytes.Buffer
	if err := f.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Rev != "rt" || len(got.Cases) != 1 || got.Cases[0].MedianNS != 42 {
		t.Fatalf("roundtrip = %+v", got)
	}
	// %.6g rounding is part of the schema contract.
	if got.Cases[0].Metrics["edges_per_s"] != 1234.57 {
		t.Fatalf("metric = %v, want 1234.57", got.Cases[0].Metrics["edges_per_s"])
	}
}

// TestGoldenBenchSchema pins the facade.bench/v1 wire format byte for
// byte. If this fails because the format intentionally changed, bump the
// schema version and regenerate with -update.
func TestGoldenBenchSchema(t *testing.T) {
	f := &File{
		Schema: Schema,
		Rev:    "golden",
		Cases: []Result{
			{
				Name: "interp/fib", Reps: 3, Warmup: 1,
				MedianNS: 5200000, MADNS: 130000, MinNS: 5000000, MaxNS: 5600000,
				RepsNS:  []int64{5200000, 5000000, 5600000},
				Metrics: map[string]float64{"edges_per_s": 3548510.123, "gc_ms": 0},
			},
			// The shape `repro load` emits: a sustained case aggregates a
			// whole run, so it has no per-rep samples (reps_ns null) and
			// carries the load metrics instead.
			{
				Name: "sustained/smoke/latency", Reps: 40,
				MedianNS: 25000000, MADNS: 7700000, MinNS: 2900000, MaxNS: 39100000,
				Metrics: map[string]float64{
					"p95_ns": 35500000, "p99_ns": 39100000,
					"rejections": 0, "warm_hit_rate": 0.975,
					"gc_pause_share": 0.0123, "ome_rate": 0.05,
				},
			},
		},
	}
	var buf bytes.Buffer
	if err := f.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "golden_bench.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("facade.bench/v1 encoding changed:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
	// Determinism: encoding twice yields identical bytes.
	var buf2 bytes.Buffer
	if err := f.Encode(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("encoding is not deterministic")
	}
}
