// Package bench is the repo's performance-measurement subsystem: a small
// registry of end-to-end workloads (interpreter, heap, off-heap store,
// framework runs), a repetition harness with warmup and robust statistics
// (median + median absolute deviation, not mean ± stddev, so one noisy
// rep cannot move the headline number), and a stable JSON result format
// (facade.bench/v1) that CI diffs against a committed baseline.
//
// The harness is deliberately separate from `go test -bench`: the root
// bench_test.go benchmarks are exploratory and run under the testing
// package's policies; this package produces the regression-gate artifact
// (BENCH_<rev>.json) with a schema other tooling can rely on.
package bench

import (
	"fmt"
	"io"
	"regexp"
	"sort"
	"time"
)

// Case is one registered workload. Run executes a single measured
// repetition and may return auxiliary metrics (throughput, counts) that
// are carried into the result file; wall time is measured by the harness.
type Case struct {
	Name  string
	Short bool // included in -short smoke runs (CI)
	Run   func() (map[string]float64, error)
}

var registry []Case

// Register adds a case; names must be unique.
func Register(c Case) {
	for _, e := range registry {
		if e.Name == c.Name {
			panic("bench: duplicate case " + c.Name)
		}
	}
	registry = append(registry, c)
}

// Cases returns the registered cases sorted by name.
func Cases() []Case {
	out := make([]Case, len(registry))
	copy(out, registry)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Options configures a harness run.
type Options struct {
	Reps   int // measured repetitions per case (default 5)
	Warmup int // discarded repetitions per case (default 1)
	Short  bool
	Filter *regexp.Regexp
	Rev    string
	// Progress receives one line per completed case when non-nil.
	Progress io.Writer
	// Slowdown artificially inflates every measured time by this factor
	// (e.g. 1.1 = +10%). It exists so the regression gate can be
	// demonstrated to fail: `repro bench -slowdown 1.15 -baseline ...`
	// must exit non-zero. The calibration case is exempt — the flag
	// simulates a code regression, not a slower machine, so it must not
	// be cancelled by cross-machine normalization. 0 or 1 = no inflation.
	Slowdown float64
}

// Run executes the selected cases and returns the result file.
func Run(opts Options) (*File, error) {
	reps := opts.Reps
	if reps <= 0 {
		reps = 5
	}
	warmup := opts.Warmup
	if warmup < 0 {
		warmup = 0
	} else if opts.Warmup == 0 {
		warmup = 1
	}
	f := &File{Schema: Schema, Rev: opts.Rev}
	for _, c := range Cases() {
		if opts.Short && !c.Short {
			continue
		}
		if opts.Filter != nil && !opts.Filter.MatchString(c.Name) {
			continue
		}
		slowdown := opts.Slowdown
		if c.Name == CalibrationCase {
			slowdown = 0
		}
		res, err := runCase(c, reps, warmup, slowdown)
		if err != nil {
			return nil, fmt.Errorf("bench %s: %w", c.Name, err)
		}
		f.Cases = append(f.Cases, res)
		if opts.Progress != nil {
			fmt.Fprintf(opts.Progress, "%-28s median %12s  mad %10s  (%d reps)\n",
				c.Name, time.Duration(res.MedianNS), time.Duration(res.MADNS), reps)
		}
	}
	if len(f.Cases) == 0 {
		return nil, fmt.Errorf("bench: no cases selected")
	}
	return f, nil
}

func runCase(c Case, reps, warmup int, slowdown float64) (Result, error) {
	for i := 0; i < warmup; i++ {
		if _, err := c.Run(); err != nil {
			return Result{}, err
		}
	}
	times := make([]int64, 0, reps)
	var metrics map[string]float64
	for i := 0; i < reps; i++ {
		start := time.Now()
		m, err := c.Run()
		ns := time.Since(start).Nanoseconds()
		if err != nil {
			return Result{}, err
		}
		if slowdown > 0 && slowdown != 1 {
			ns = int64(float64(ns) * slowdown)
		}
		times = append(times, ns)
		metrics = m
	}
	med, mad, min, max := Stats(times)
	return Result{
		Name:     c.Name,
		Reps:     reps,
		Warmup:   warmup,
		MedianNS: med,
		MADNS:    mad,
		MinNS:    min,
		MaxNS:    max,
		RepsNS:   times,
		Metrics:  metrics,
	}, nil
}

// Stats returns the median, median absolute deviation, min, and max of
// the sample. The input is not modified.
func Stats(samples []int64) (median, mad, min, max int64) {
	if len(samples) == 0 {
		return 0, 0, 0, 0
	}
	s := make([]int64, len(samples))
	copy(s, samples)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	median = medianOfSorted(s)
	min, max = s[0], s[len(s)-1]
	dev := make([]int64, len(s))
	for i, v := range s {
		d := v - median
		if d < 0 {
			d = -d
		}
		dev[i] = d
	}
	sort.Slice(dev, func(i, j int) bool { return dev[i] < dev[j] })
	mad = medianOfSorted(dev)
	return median, mad, min, max
}

func medianOfSorted(s []int64) int64 {
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}
