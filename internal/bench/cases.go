package bench

import (
	"fmt"
	"os"
	"sync"

	"repro/facade"
	"repro/internal/analysis"
	"repro/internal/cluster"
	"repro/internal/datagen"
	"repro/internal/dfs"
	"repro/internal/gps"
	"repro/internal/graphchi"
	"repro/internal/heap"
	"repro/internal/hyracks"
	"repro/internal/ir"
	"repro/internal/obs"
	"repro/internal/offheap"
	"repro/internal/vm"
)

// The registered workloads. Short cases form the CI smoke set and are
// sized to finish in tens of milliseconds each; the full set adds the
// larger framework runs. Program compilation happens lazily outside the
// timed region (the first warmup repetition pays it once per process).

func init() {
	Register(Case{Name: CalibrationCase, Short: true, Run: runCalibration})
	Register(Case{Name: "interp/fib", Short: true, Run: lazyFacade(fibSrc, 8<<20)})
	Register(Case{Name: "heap/alloc-churn", Short: true, Run: lazyFacade(churnSrc, 8<<20)})
	Register(Case{Name: "offheap/iter-churn", Short: true, Run: runOffheapChurn})
	Register(Case{Name: "graphchi/pagerank/P", Short: true, Run: lazyGraphchi(false)})
	Register(Case{Name: "graphchi/pagerank/P2", Short: true, Run: lazyGraphchi(true)})
	Register(Case{Name: "gps/pagerank/P2", Run: runGPS})
	Register(Case{Name: "hyracks/wordcount/P2", Run: runHyracks})
	Register(Case{Name: "lifetimes/pagerank", Short: true, Run: runLifetimes(graphchi.PageRank)})
	Register(Case{Name: "lifetimes/cc", Run: runLifetimes(graphchi.ConnectedComponents)})
	Register(Case{Name: "tiered/pagerank", Short: true, Run: runTiered(false)})
	Register(Case{Name: "tiered/pagerank-10x", Run: runTiered(true)})
}

// runCalibration is a fixed pure-Go integer workload: no allocation, no
// interpreter, no locks. Its wall time tracks single-core machine speed,
// which is exactly what cross-machine normalization needs.
func runCalibration() (map[string]float64, error) {
	var acc uint64 = 0x9e3779b97f4a7c15
	for i := 0; i < 40_000_000; i++ {
		acc ^= acc << 13
		acc ^= acc >> 7
		acc ^= acc << 17
	}
	if acc == 0 {
		return nil, fmt.Errorf("bench: calibration degenerated")
	}
	return map[string]float64{"checksum": float64(acc % 1000)}, nil
}

const fibSrc = `
class Main {
    static int fib(int n) {
        if (n < 2) { return n; }
        return Main.fib(n - 1) + Main.fib(n - 2);
    }
    static void main() { Sys.println(Main.fib(21)); }
}
class D { int x; }
`

const churnSrc = `
class Cell { long v; Cell next; }
class Main {
    static void main() {
        int sum = 0;
        for (int r = 0; r < 10; r = r + 1) {
            Cell head = null;
            for (int i = 0; i < 20000; i = i + 1) {
                Cell c = new Cell();
                c.v = i;
                c.next = head;
                head = c;
            }
            sum = sum + (int) head.v;
        }
        Sys.println(sum);
    }
}
`

// lazyFacade compiles src once and times facade.Run per repetition.
func lazyFacade(src string, heapSize int) func() (map[string]float64, error) {
	var once sync.Once
	var prog *ir.Program
	var cErr error
	return func() (map[string]float64, error) {
		once.Do(func() {
			prog, cErr = facade.Compile(map[string]string{"bench.fj": src})
		})
		if cErr != nil {
			return nil, cErr
		}
		res, err := facade.Run(prog, facade.WithHeapSize(heapSize))
		if err != nil {
			return nil, err
		}
		res.Close()
		return nil, nil
	}
}

// runOffheapChurn exercises the iteration-based page store: open an
// iteration, fill pages across size classes, release — the path the
// per-scope page cache accelerates.
func runOffheapChurn() (map[string]float64, error) {
	rt := offheap.NewRuntime()
	ic := 0
	s := rt.NewIterScope(nil, &ic, 0)
	defer s.Close()
	for iter := 0; iter < 300; iter++ {
		s.IterationStart()
		m := s.Current()
		for j := 0; j < 400; j++ {
			if _, err := m.AllocRecord(1, 48); err != nil {
				return nil, err
			}
			if _, err := m.AllocRecord(2, 200); err != nil {
				return nil, err
			}
		}
		s.IterationEnd()
	}
	st := rt.Stats()
	return map[string]float64{
		"pages_created":  float64(st.PagesCreated),
		"pages_recycled": float64(st.PagesRecycled),
	}, nil
}

var (
	graphchiOnce  sync.Once
	graphchiP     *ir.Program
	graphchiP2    *ir.Program
	graphchiErr   error
	graphchiShard *graphchi.ShardedGraph
)

func lazyGraphchi(transformed bool) func() (map[string]float64, error) {
	return func() (map[string]float64, error) {
		graphchiOnce.Do(func() {
			graphchiP, graphchiP2, graphchiErr = graphchi.BuildPrograms()
			if graphchiErr == nil {
				g := datagen.PowerLawGraph(2000, 30000, 42)
				graphchiShard = graphchi.Shard(g, 10, false)
			}
		})
		if graphchiErr != nil {
			return nil, graphchiErr
		}
		prog := graphchiP
		if transformed {
			prog = graphchiP2
		}
		m, err := vm.New(prog, vm.Config{HeapSize: 16 << 20})
		if err != nil {
			return nil, err
		}
		met, _, err := graphchi.Run(m, graphchiShard, graphchi.Config{
			App: graphchi.PageRank, Workers: 2, Iterations: 2, MemoryBudget: 8 << 20,
		})
		if err != nil {
			return nil, err
		}
		return map[string]float64{
			"edges_per_s": met.Throughput(),
			"gc_ms":       float64(met.GT.Milliseconds()),
		}, nil
	}
}

var (
	tieredOnce  sync.Once
	tieredErr   error
	tieredShard *graphchi.ShardedGraph // 10x the Table 2 graph
)

// runTiered measures GraphChi PageRank on P' with the off-heap disk tier
// engaged. The short case squeezes the Table 2 graph under a tight
// watermark; the 10x case runs the acceptance-scale graph (20000V/300000E)
// under a DRAM cap well below the dataset, so spill/promote traffic is on
// the critical path. pages_spilled is reported as a metric and must be
// nonzero — a run that never spills is measuring the wrong thing.
func runTiered(atScale bool) func() (map[string]float64, error) {
	return func() (map[string]float64, error) {
		graphchiOnce.Do(func() {
			graphchiP, graphchiP2, graphchiErr = graphchi.BuildPrograms()
			if graphchiErr == nil {
				g := datagen.PowerLawGraph(2000, 30000, 42)
				graphchiShard = graphchi.Shard(g, 10, false)
			}
		})
		if graphchiErr != nil {
			return nil, graphchiErr
		}
		shard, heap, high, low := graphchiShard, 16<<20, 12, 6
		if atScale {
			tieredOnce.Do(func() {
				g := datagen.PowerLawGraph(20000, 300000, 42)
				tieredShard = graphchi.Shard(g, 10, false)
			})
			if tieredErr != nil {
				return nil, tieredErr
			}
			shard, heap, high, low = tieredShard, 48<<20, 64, 32
		}
		// The tier's spill file lives until VM teardown; give each rep its
		// own directory so nothing accumulates in the system temp dir.
		dir, err := os.MkdirTemp("", "bench-tier-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		met, _, err := graphchi.RunProgram(graphchiP2, heap, shard, graphchi.Config{
			App: graphchi.PageRank, Workers: 2, Iterations: 2, MemoryBudget: 8 << 20,
			Tiering: &offheap.TierConfig{Dir: dir, HighWater: high, LowWater: low},
		})
		if err != nil {
			return nil, err
		}
		if met.PagesSpilled == 0 {
			return nil, fmt.Errorf("bench: tiered run never spilled (watermark %d/%d)", high, low)
		}
		return map[string]float64{
			"edges_per_s":    met.Throughput(),
			"pages_spilled":  float64(met.PagesSpilled),
			"pages_promoted": float64(met.PagesPromoted),
		}, nil
	}
}

var (
	gpsOnce sync.Once
	gpsP2   *ir.Program
	gpsErr  error
	gpsG    *datagen.Graph
)

func runGPS() (map[string]float64, error) {
	gpsOnce.Do(func() {
		_, gpsP2, gpsErr = gps.BuildPrograms()
		if gpsErr == nil {
			gpsG = datagen.PowerLawGraph(4000, 60000, 100)
		}
	})
	if gpsErr != nil {
		return nil, gpsErr
	}
	res, err := gps.Run(gpsP2, gpsG, gps.Config{
		App: gps.PageRank, Nodes: 2, HeapPerNode: 16 << 20, Supersteps: 3, Seed: 7,
	})
	if err != nil {
		return nil, err
	}
	return map[string]float64{"gc_ms": float64(res.GT.Milliseconds())}, nil
}

var (
	hyOnce  sync.Once
	hyP2    *ir.Program
	hyErr   error
	hyParts [][]byte
)

func runHyracks() (map[string]float64, error) {
	hyOnce.Do(func() {
		_, hyP2, hyErr = hyracks.BuildPrograms()
		if hyErr == nil {
			corpus := datagen.CorpusSkewed(3*48<<10, 200, 3)
			hyParts = datagen.Partition(corpus, 2)
		}
	})
	if hyErr != nil {
		return nil, hyErr
	}
	res, err := hyracks.RunJob(hyP2, hyracks.WordCountJob{}, hyParts,
		cluster.Config{NumNodes: 2, HeapPerNode: 4 << 20}, int64(4<<20)*8, dfs.New())
	if err != nil {
		return nil, err
	}
	ome := 0.0
	if res.OME {
		ome = 1
	}
	return map[string]float64{"ome": ome, "gc_ms": float64(res.GT.Milliseconds())}, nil
}

var (
	ltOnce  sync.Once
	ltP     *ir.Program
	ltLifes []ir.Lifetime
	ltErr   error
	ltPR    *graphchi.ShardedGraph
	ltCC    *graphchi.ShardedGraph
)

// runLifetimes measures the lifetime pass's placement effect on the
// Table 2 workloads: the same GraphChi run with lifetimes off and with
// the inferred placement enforced. promoted_off vs promoted_enforce is
// the young-generation evacuation-copy count the pretenuring removes.
func runLifetimes(app graphchi.App) func() (map[string]float64, error) {
	return func() (map[string]float64, error) {
		ltOnce.Do(func() {
			ltP, _, ltErr = graphchi.BuildPrograms()
			if ltErr != nil {
				return
			}
			ltLifes = analysis.Lifetimes(ltP)
			g := datagen.PowerLawGraph(2000, 30000, 42)
			ltPR = graphchi.Shard(g, 10, false)
			ltCC = graphchi.Shard(g, 10, true)
		})
		if ltErr != nil {
			return nil, ltErr
		}
		sg := ltPR
		if app == graphchi.ConnectedComponents {
			sg = ltCC
		}
		run := func(mode heap.LifetimeMode) (promoted, pretenured float64, err error) {
			cfg := vm.Config{HeapSize: 10 << 20}
			if mode != heap.LifetimeOff {
				cfg.Lifetimes = ltLifes
				cfg.LifetimeMode = mode
			}
			m, err := vm.New(ltP, cfg)
			if err != nil {
				return 0, 0, err
			}
			if _, _, err := graphchi.Run(m, sg, graphchi.Config{
				App: app, Workers: 2, Iterations: 2, MemoryBudget: 8 << 20,
			}); err != nil {
				return 0, 0, err
			}
			promoted = float64(m.Heap.Stats().Promoted)
			pretenured = float64(m.Obs().Snapshot().Counters[obs.CtrLifetimePretenured])
			return promoted, pretenured, nil
		}
		pOff, _, err := run(heap.LifetimeOff)
		if err != nil {
			return nil, err
		}
		pEnf, pretenured, err := run(heap.LifetimeEnforce)
		if err != nil {
			return nil, err
		}
		return map[string]float64{
			"promoted_off":     pOff,
			"promoted_enforce": pEnf,
			"pretenured":       pretenured,
		}, nil
	}
}
