package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/obs"
)

// Schema versions the benchmark result format. Consumers must reject
// files whose schema they do not understand.
const Schema = "facade.bench/v1"

// CalibrationCase is the pure-Go spin workload whose median is used to
// normalize wall times across machines: the regression gate divides every
// case's current/baseline ratio by the calibration ratio, so a uniformly
// slower CI runner does not read as a regression.
const CalibrationCase = "calibrate/spin"

// File is the on-disk container: one harness invocation.
type File struct {
	Schema string   `json:"schema"`
	Rev    string   `json:"rev,omitempty"`
	Cases  []Result `json:"cases"`
}

// Result is one case's statistics across the measured repetitions.
type Result struct {
	Name     string             `json:"name"`
	Reps     int                `json:"reps"`
	Warmup   int                `json:"warmup"`
	MedianNS int64              `json:"median_ns"`
	MADNS    int64              `json:"mad_ns"`
	MinNS    int64              `json:"min_ns"`
	MaxNS    int64              `json:"max_ns"`
	RepsNS   []int64            `json:"reps_ns"`
	Metrics  map[string]float64 `json:"metrics,omitempty"`
}

// Encode writes the file deterministically (sorted keys, %.6g floats via
// the shared obs encoder), so identical results are byte-identical.
func (f *File) Encode(w io.Writer) error {
	return obs.EncodeDeterministic(w, f)
}

// WriteFile writes the result file to path.
func (f *File) WriteFile(path string) error {
	w, err := os.Create(path)
	if err != nil {
		return err
	}
	defer w.Close()
	return f.Encode(w)
}

// Decode reads a result file, rejecting unknown schemas.
func Decode(r io.Reader) (*File, error) {
	var f File
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, err
	}
	if f.Schema != Schema {
		return nil, fmt.Errorf("bench: unsupported schema %q (want %q)", f.Schema, Schema)
	}
	return &f, nil
}

// ReadFile reads a result file from path.
func ReadFile(path string) (*File, error) {
	r, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	return Decode(r)
}

// Delta is one case's baseline-vs-current comparison.
type Delta struct {
	Name      string
	BaseNS    int64
	CurNS     int64
	Ratio     float64 // CurNS / BaseNS
	NormRatio float64 // Ratio divided by the calibration ratio
	Regressed bool
}

// Compare matches cases by name and flags regressions: a case regresses
// when its normalized ratio exceeds 1+tolerance. When both files carry
// the calibration case, ratios are normalized by it (and the calibration
// case itself is never flagged); otherwise NormRatio == Ratio. Cases
// present in only one file are skipped — the gate protects what the
// baseline covers. Returns all matched deltas and the number regressed.
func Compare(base, cur *File, tolerance float64) ([]Delta, int) {
	baseBy := make(map[string]Result, len(base.Cases))
	for _, r := range base.Cases {
		baseBy[r.Name] = r
	}
	norm := 1.0
	if bc, ok := baseBy[CalibrationCase]; ok && bc.MedianNS > 0 {
		for _, r := range cur.Cases {
			if r.Name == CalibrationCase && r.MedianNS > 0 {
				norm = float64(r.MedianNS) / float64(bc.MedianNS)
			}
		}
	}
	var deltas []Delta
	regressed := 0
	for _, r := range cur.Cases {
		b, ok := baseBy[r.Name]
		if !ok || b.MedianNS <= 0 {
			continue
		}
		d := Delta{
			Name:   r.Name,
			BaseNS: b.MedianNS,
			CurNS:  r.MedianNS,
			Ratio:  float64(r.MedianNS) / float64(b.MedianNS),
		}
		d.NormRatio = d.Ratio / norm
		if r.Name != CalibrationCase && d.NormRatio > 1+tolerance {
			d.Regressed = true
			regressed++
		}
		deltas = append(deltas, d)
	}
	return deltas, regressed
}
