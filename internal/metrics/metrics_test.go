package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestTableRendering(t *testing.T) {
	tbl := NewTable("Title", "name", "secs", "count")
	tbl.Row("alpha", 1500*time.Millisecond, 42)
	tbl.Row("a-much-longer-name", 250*time.Millisecond, 7)
	var sb strings.Builder
	tbl.Render(&sb)
	out := sb.String()
	if !strings.HasPrefix(out, "Title\n") {
		t.Fatalf("missing title: %q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("line count %d: %q", len(lines), out)
	}
	if !strings.Contains(lines[3], "1.50") {
		t.Fatalf("duration formatting: %q", lines[3])
	}
	// Columns align: every data line must be at least as wide as the
	// longest cell of its column positions.
	if !strings.Contains(lines[4], "a-much-longer-name") {
		t.Fatal("row lost")
	}
}

func TestFloatAndHelpers(t *testing.T) {
	tbl := NewTable("", "v")
	tbl.Row(3.14159)
	var sb strings.Builder
	tbl.Render(&sb)
	if !strings.Contains(sb.String(), "3.1") {
		t.Fatalf("float formatting: %q", sb.String())
	}
	if MB(3<<20) != "3.0" {
		t.Fatalf("MB: %s", MB(3<<20))
	}
	if Ratio(2*time.Second, time.Second) != "2.0x" {
		t.Fatal("Ratio")
	}
	if Ratio(time.Second, 0) != "inf" {
		t.Fatal("Ratio zero")
	}
}
