package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestTableRendering(t *testing.T) {
	tbl := NewTable("Title", "name", "secs", "count")
	tbl.Row("alpha", 1500*time.Millisecond, 42)
	tbl.Row("a-much-longer-name", 250*time.Millisecond, 7)
	var sb strings.Builder
	tbl.Render(&sb)
	out := sb.String()
	if !strings.HasPrefix(out, "Title\n") {
		t.Fatalf("missing title: %q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("line count %d: %q", len(lines), out)
	}
	if !strings.Contains(lines[3], "1.50") {
		t.Fatalf("duration formatting: %q", lines[3])
	}
	// Columns align: every data line must be at least as wide as the
	// longest cell of its column positions.
	if !strings.Contains(lines[4], "a-much-longer-name") {
		t.Fatal("row lost")
	}
}

func TestFloatAndHelpers(t *testing.T) {
	tbl := NewTable("", "v")
	tbl.Row(3.14159)
	var sb strings.Builder
	tbl.Render(&sb)
	if !strings.Contains(sb.String(), "3.1") {
		t.Fatalf("float formatting: %q", sb.String())
	}
	if MB(3<<20) != "3.0" {
		t.Fatalf("MB: %s", MB(3<<20))
	}
	if Ratio(2*time.Second, time.Second) != "2.0x" {
		t.Fatal("Ratio")
	}
	if Ratio(time.Second, 0) != "inf" {
		t.Fatal("Ratio zero")
	}
}

func TestHelperEdgeCases(t *testing.T) {
	if MB(0) != "0.0" {
		t.Fatalf("MB(0): %s", MB(0))
	}
	if MB(-1) != "-" {
		t.Fatalf("MB(-1): %s", MB(-1))
	}
	if Ratio(-time.Second, time.Second) != "-" {
		t.Fatal("Ratio negative a")
	}
	if Ratio(time.Second, -time.Second) != "-" {
		t.Fatal("Ratio negative b")
	}
	if Ratio(0, 0) != "-" {
		t.Fatal("Ratio 0/0")
	}
	if Ratio(0, time.Second) != "0.0x" {
		t.Fatal("Ratio 0/1")
	}
}

func TestNumericColumnsRightAligned(t *testing.T) {
	tbl := NewTable("", "name", "count")
	tbl.Row("a", 7)
	tbl.Row("bbbb", 12345)
	var sb strings.Builder
	tbl.Render(&sb)
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	// Body lines: numeric column right-aligned (short value padded left),
	// text column left-aligned.
	if !strings.Contains(lines[2], "a         7") {
		t.Fatalf("numeric column not right-aligned: %q", lines[2])
	}
	if !strings.Contains(lines[3], "bbbb  12345") {
		t.Fatalf("wide value misaligned: %q", lines[3])
	}
	// Mixed (non-numeric) columns stay left-aligned: the short "3" row is
	// padded on the right, not pushed to the column's right edge.
	tbl2 := NewTable("", "verylongheader")
	tbl2.Row("OME(1.2)")
	tbl2.Row(3)
	var sb2 strings.Builder
	tbl2.Render(&sb2)
	l := strings.Split(strings.TrimRight(sb2.String(), "\n"), "\n")
	if got := l[3]; strings.TrimSpace(got) != "3" || !strings.HasPrefix(got, "  3 ") {
		t.Fatalf("mixed column should stay left-aligned: %q", got)
	}
}
