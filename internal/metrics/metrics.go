// Package metrics renders experiment results as aligned text tables, the
// way cmd/repro and the benchmark harness report each reproduced table and
// figure.
package metrics

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Row appends a row; values are formatted with %v.
func (t *Table) Row(vals ...any) {
	row := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.1f", x)
		case time.Duration:
			row[i] = fmt.Sprintf("%.2f", x.Seconds())
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// MB formats a byte count in mebibytes.
func MB(b int64) string { return fmt.Sprintf("%.1f", float64(b)/(1<<20)) }

// Ratio formats a/b as "N.Nx" (guarding zero).
func Ratio(a, b time.Duration) string {
	if b == 0 {
		return "inf"
	}
	return fmt.Sprintf("%.1fx", float64(a)/float64(b))
}
