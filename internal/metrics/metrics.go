// Package metrics renders experiment results as aligned text tables, the
// way cmd/repro and the benchmark harness report each reproduced table and
// figure.
package metrics

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Row appends a row; values are formatted with %v.
func (t *Table) Row(vals ...any) {
	row := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.1f", x)
		case time.Duration:
			row[i] = fmt.Sprintf("%.2f", x.Seconds())
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

// Render writes the table to w. Columns whose body cells are all numeric
// (a "-" placeholder counts) are right-aligned under their header, the
// usual convention for measurement tables; text columns stay left-aligned.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	numeric := make([]bool, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
		numeric[i] = len(t.rows) > 0
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i >= len(widths) {
				continue
			}
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
			if !isNumericCell(c) {
				numeric[i] = false
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	line := func(cells []string, alignRight bool) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if alignRight && numeric[i] {
				parts[i] = padLeft(c, widths[i])
			} else {
				parts[i] = pad(c, widths[i])
			}
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.Headers, true)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep, false)
	for _, r := range t.rows {
		line(r, true)
	}
}

// isNumericCell reports whether a rendered cell is a number, optionally
// with a trailing unit suffix ("2.0x", "85%"); "-" and "" are neutral
// placeholders that do not break a numeric column.
func isNumericCell(s string) bool {
	if s == "" || s == "-" || s == "inf" {
		return true
	}
	s = strings.TrimRight(s, "x%")
	if s == "" {
		return false
	}
	_, err := strconv.ParseFloat(s, 64)
	return err == nil
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

func padLeft(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return strings.Repeat(" ", w-len(s)) + s
}

// MB formats a byte count in mebibytes. Negative counts (an uninitialized
// or inapplicable measurement) render as the "-" placeholder rather than a
// nonsense negative size; zero renders as "0.0".
func MB(b int64) string {
	if b < 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f", float64(b)/(1<<20))
}

// Ratio formats a/b as "N.Nx". Degenerate inputs render as placeholders:
// a negative duration on either side gives "-" (clocks went backwards or
// the measurement is missing), 0/0 gives "-", and a positive a over a zero
// b gives "inf".
func Ratio(a, b time.Duration) string {
	if a < 0 || b < 0 {
		return "-"
	}
	if b == 0 {
		if a == 0 {
			return "-"
		}
		return "inf"
	}
	return fmt.Sprintf("%.1fx", float64(a)/float64(b))
}
